//! Critical-path analysis: the Dapper tree-walk of the paper's Section 3.
//!
//! A trace's wall-clock is attributed by walking its span tree *backwards*
//! from the end: at every instant the path charges the child chain that
//! finishes latest (the slowest chain — the one the request actually waited
//! on), recursing into that child, and falls back to the span's own kind
//! for uncovered self time. The result is a per-category breakdown whose
//! nanoseconds partition the trace's end-to-end window exactly, so category
//! fractions sum to 1.0 up to float rounding — the complement to the
//! GWP-style CPU fractions, which weigh *cycles* rather than *waiting*.

use std::collections::BTreeMap;

use hsdp_rpc::span::{Span, SpanId, SpanKind};

/// Ancestor-chain cap: traces here are a few levels deep; anything deeper
/// is a malformed parent link and is attributed leaf-style instead of
/// recursed into.
const MAX_DEPTH: usize = 64;

/// What a critical-path nanosecond was spent waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PathCategory {
    /// Local CPU computation on the path.
    Cpu,
    /// Distributed-storage IO on the path.
    Io,
    /// Remote work (consensus, compaction, shuffle) on the path.
    Remote,
    /// Container-span self time: orchestration gaps between children.
    Orchestration,
    /// Time outside every span tree (gaps between a trace's roots).
    Idle,
}

impl PathCategory {
    /// All categories in presentation order.
    pub const ALL: [PathCategory; 5] = [
        PathCategory::Cpu,
        PathCategory::Io,
        PathCategory::Remote,
        PathCategory::Orchestration,
        PathCategory::Idle,
    ];

    /// Stable lower-case name for serialization.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PathCategory::Cpu => "cpu",
            PathCategory::Io => "io",
            PathCategory::Remote => "remote",
            PathCategory::Orchestration => "orchestration",
            PathCategory::Idle => "idle",
        }
    }

    fn index(self) -> usize {
        match self {
            PathCategory::Cpu => 0,
            PathCategory::Io => 1,
            PathCategory::Remote => 2,
            PathCategory::Orchestration => 3,
            PathCategory::Idle => 4,
        }
    }

    /// The category a span's *self time* on the path is charged to.
    fn of_kind(kind: SpanKind) -> PathCategory {
        match kind {
            SpanKind::Cpu => PathCategory::Cpu,
            SpanKind::Io => PathCategory::Io,
            SpanKind::RemoteWork => PathCategory::Remote,
            SpanKind::Container => PathCategory::Orchestration,
        }
    }
}

/// Integer-exact critical-path attribution of one or more traces.
///
/// The per-category nanoseconds of a single trace partition its end-to-end
/// window exactly; merged breakdowns partition the summed windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CriticalPathBreakdown {
    ns: [u64; 5],
}

impl CriticalPathBreakdown {
    /// An empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Nanoseconds attributed to `category`.
    #[must_use]
    pub fn ns(&self, category: PathCategory) -> u64 {
        self.ns[category.index()]
    }

    /// Total attributed nanoseconds (equals summed end-to-end windows).
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// The fraction of the critical path in `category` (0.0 when empty).
    /// Fractions across [`PathCategory::ALL`] sum to 1.0 ± 1e-9.
    #[must_use]
    pub fn fraction(&self, category: PathCategory) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            // audit: allow(cast, nanosecond counts to f64 for a dimensionless ratio; exact below 2^53 ns)
            self.ns(category) as f64 / total as f64
        }
    }

    /// All `(category, ns, fraction)` rows in presentation order.
    #[must_use]
    pub fn rows(&self) -> Vec<(PathCategory, u64, f64)> {
        PathCategory::ALL
            .iter()
            .map(|&c| (c, self.ns(c), self.fraction(c)))
            .collect()
    }

    /// Folds another breakdown into this one (commutative, associative).
    pub fn merge(&mut self, other: &CriticalPathBreakdown) {
        for (slot, add) in self.ns.iter_mut().zip(other.ns) {
            *slot += add;
        }
    }

    fn charge(&mut self, category: PathCategory, lo: u64, hi: u64) {
        if hi > lo {
            self.ns[category.index()] += hi - lo;
        }
    }
}

/// Walks the span tree(s) in `spans` and attributes the trace's wall-clock
/// window to the slowest child chain.
///
/// `spans` is one trace's span set (multiple roots are allowed — composed
/// operations like read-modify-write concatenate two trees; gaps between
/// trees are charged to [`PathCategory::Idle`]). An empty slice yields an
/// empty breakdown.
#[must_use]
pub fn critical_path(spans: &[Span]) -> CriticalPathBreakdown {
    let mut out = CriticalPathBreakdown::new();
    if spans.is_empty() {
        return out;
    }

    // Child index: parent id -> children. A span whose parent is missing
    // from the set (or self-referential) is treated as a root.
    let ids: BTreeMap<SpanId, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let mut children: BTreeMap<SpanId, Vec<&Span>> = BTreeMap::new();
    let mut roots: Vec<&Span> = Vec::new();
    for span in spans {
        match span.parent {
            Some(parent) if parent != span.id && ids.contains_key(&parent) => {
                children.entry(parent).or_default().push(span);
            }
            _ => roots.push(span),
        }
    }

    // The trace window: first start to last end across all spans.
    let window_lo = spans.iter().map(|s| s.start.as_nanos()).min().unwrap_or(0);
    let window_hi = spans.iter().map(|s| s.end.as_nanos()).max().unwrap_or(0);

    // Treat the roots as children of a virtual Idle-kind container over the
    // whole window.
    walk_children(
        &roots,
        PathCategory::Idle,
        window_lo,
        window_hi,
        &children,
        0,
        &mut out,
    );
    out
}

/// Attributes `[lo, hi]` of `span`'s timeline: slowest-finishing children
/// claim their segments (recursively); the remainder is span self time.
fn walk_span(
    span: &Span,
    lo: u64,
    hi: u64,
    children: &BTreeMap<SpanId, Vec<&Span>>,
    depth: usize,
    out: &mut CriticalPathBreakdown,
) {
    let own = PathCategory::of_kind(span.kind);
    match children.get(&span.id) {
        Some(kids) if depth < MAX_DEPTH => {
            walk_children(kids, own, lo, hi, children, depth, out);
        }
        _ => out.charge(own, lo, hi),
    }
}

/// The backward walk shared by real containers and the virtual root: pick,
/// at each cursor, the unconsumed child active before the cursor whose
/// (clamped) end is latest; charge the gap above it to `self_category` and
/// recurse into the child below it.
fn walk_children(
    kids: &[&Span],
    self_category: PathCategory,
    lo: u64,
    hi: u64,
    children: &BTreeMap<SpanId, Vec<&Span>>,
    depth: usize,
    out: &mut CriticalPathBreakdown,
) {
    let mut consumed = vec![false; kids.len()];
    let mut cursor = hi;
    while cursor > lo {
        // The candidate maximizing min(end, cursor), tie-broken by (end,
        // id) so the walk is deterministic for identical timestamps.
        let mut best: Option<(u64, u64, u64, usize)> = None;
        for (i, kid) in kids.iter().enumerate() {
            if consumed[i] || kid.start.as_nanos() >= cursor {
                continue;
            }
            let clamped = kid.end.as_nanos().min(cursor);
            let rank = (clamped, kid.end.as_nanos(), kid.id.0, i);
            if best.is_none_or(|b| (b.0, b.1, b.2) < (rank.0, rank.1, rank.2)) {
                best = Some(rank);
            }
        }
        let Some((clamped_end, _, _, index)) = best else {
            break;
        };
        consumed[index] = true;
        let kid = kids[index];
        // Gap between the chain's latest child end and the cursor is the
        // parent's own waiting.
        out.charge(self_category, clamped_end, cursor);
        let kid_lo = kid.start.as_nanos().max(lo);
        walk_span(kid, kid_lo, clamped_end, children, depth + 1, out);
        cursor = kid_lo;
    }
    out.charge(self_category, lo, cursor);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_rpc::span::{SpanKind, TraceId};
    use hsdp_simcore::time::SimTime;

    fn span(id: u64, parent: Option<u64>, kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            trace: TraceId(1),
            id: SpanId(id),
            parent: parent.map(SpanId),
            name: format!("s{id}"),
            kind,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            request: hsdp_core::request::RequestId::UNTAGGED,
        }
    }

    #[test]
    fn sequential_children_partition_exactly() {
        let spans = vec![
            span(1, None, SpanKind::Container, 0, 100),
            span(2, Some(1), SpanKind::Cpu, 0, 40),
            span(3, Some(1), SpanKind::RemoteWork, 40, 70),
            span(4, Some(1), SpanKind::Io, 70, 90),
        ];
        let cp = critical_path(&spans);
        assert_eq!(cp.ns(PathCategory::Cpu), 40);
        assert_eq!(cp.ns(PathCategory::Remote), 30);
        assert_eq!(cp.ns(PathCategory::Io), 20);
        // 90..100 is the container's own tail.
        assert_eq!(cp.ns(PathCategory::Orchestration), 10);
        assert_eq!(cp.total_ns(), 100);
        let total: f64 = PathCategory::ALL.iter().map(|&c| cp.fraction(c)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_children_charge_slowest_chain() {
        // IO runs [0,100]; CPU pipelines on top of it [50,120]. The path is
        // CPU back to 50, then IO covers the rest.
        let spans = vec![
            span(1, None, SpanKind::Container, 0, 120),
            span(2, Some(1), SpanKind::Io, 0, 100),
            span(3, Some(1), SpanKind::Cpu, 50, 120),
        ];
        let cp = critical_path(&spans);
        assert_eq!(cp.ns(PathCategory::Cpu), 70);
        assert_eq!(cp.ns(PathCategory::Io), 50);
        assert_eq!(cp.total_ns(), 120);
    }

    #[test]
    fn nested_grandchildren_are_walked() {
        let spans = vec![
            span(1, None, SpanKind::Container, 0, 100),
            span(2, Some(1), SpanKind::RemoteWork, 10, 90),
            span(3, Some(2), SpanKind::Cpu, 20, 50),
        ];
        let cp = critical_path(&spans);
        // Remote self time: [10,20] and [50,90]; CPU child claims [20,50];
        // container claims [0,10] and [90,100].
        assert_eq!(cp.ns(PathCategory::Remote), 50);
        assert_eq!(cp.ns(PathCategory::Cpu), 30);
        assert_eq!(cp.ns(PathCategory::Orchestration), 20);
        assert_eq!(cp.total_ns(), 100);
    }

    #[test]
    fn multi_root_gaps_are_idle() {
        let spans = vec![
            span(1, None, SpanKind::Cpu, 0, 30),
            span(2, None, SpanKind::Io, 50, 80),
        ];
        let cp = critical_path(&spans);
        assert_eq!(cp.ns(PathCategory::Cpu), 30);
        assert_eq!(cp.ns(PathCategory::Io), 30);
        assert_eq!(cp.ns(PathCategory::Idle), 20);
        assert_eq!(cp.total_ns(), 80);
    }

    #[test]
    fn empty_and_degenerate_traces() {
        assert_eq!(critical_path(&[]).total_ns(), 0);
        let zero = vec![span(1, None, SpanKind::Cpu, 5, 5)];
        assert_eq!(critical_path(&zero).total_ns(), 0);
        // Self-referential parent is treated as a root, not recursed.
        let cyclic = vec![span(7, Some(7), SpanKind::Cpu, 0, 10)];
        assert_eq!(critical_path(&cyclic).ns(PathCategory::Cpu), 10);
    }

    #[test]
    fn zero_duration_children_do_not_distort_the_partition() {
        // A zero-duration marker span sits between two real children; it
        // must not claim any path time, and the window still partitions.
        let spans = vec![
            span(1, None, SpanKind::Container, 0, 100),
            span(2, Some(1), SpanKind::Cpu, 0, 40),
            span(3, Some(1), SpanKind::Io, 40, 40),
            span(4, Some(1), SpanKind::RemoteWork, 40, 100),
        ];
        let cp = critical_path(&spans);
        assert_eq!(
            cp.ns(PathCategory::Io),
            0,
            "zero-duration span charges nothing"
        );
        assert_eq!(cp.ns(PathCategory::Cpu), 40);
        assert_eq!(cp.ns(PathCategory::Remote), 60);
        assert_eq!(cp.total_ns(), 100, "partition stays exact");
    }

    #[test]
    fn zero_duration_span_in_a_gap_terminates_and_charges_parent() {
        // The marker lands inside the container's own time: the walk must
        // consume it once (no infinite loop) and charge the surrounding gap
        // to orchestration.
        let spans = vec![
            span(1, None, SpanKind::Container, 0, 100),
            span(2, Some(1), SpanKind::Cpu, 0, 40),
            span(3, Some(1), SpanKind::Io, 70, 70),
        ];
        let cp = critical_path(&spans);
        assert_eq!(cp.ns(PathCategory::Cpu), 40);
        assert_eq!(cp.ns(PathCategory::Io), 0);
        assert_eq!(cp.ns(PathCategory::Orchestration), 60);
        assert_eq!(cp.total_ns(), 100);
    }

    #[test]
    fn zero_duration_siblings_at_one_instant() {
        // A burst of markers at the same timestamp, plus one real span. The
        // deterministic (end, id) tie-break keeps the walk finite and the
        // real span gets the whole window.
        let mut spans = vec![span(1, None, SpanKind::Container, 0, 50)];
        for id in 2..10 {
            spans.push(span(id, Some(1), SpanKind::RemoteWork, 25, 25));
        }
        spans.push(span(10, Some(1), SpanKind::Cpu, 0, 50));
        let cp = critical_path(&spans);
        assert_eq!(cp.ns(PathCategory::Cpu), 50);
        assert_eq!(cp.ns(PathCategory::Remote), 0);
        assert_eq!(cp.total_ns(), 50);
    }

    #[test]
    fn zero_duration_root_between_real_roots() {
        let spans = vec![
            span(1, None, SpanKind::Cpu, 0, 30),
            span(2, None, SpanKind::RemoteWork, 40, 40),
            span(3, None, SpanKind::Io, 50, 80),
        ];
        let cp = critical_path(&spans);
        assert_eq!(cp.ns(PathCategory::Cpu), 30);
        assert_eq!(cp.ns(PathCategory::Remote), 0);
        assert_eq!(cp.ns(PathCategory::Io), 30);
        assert_eq!(
            cp.ns(PathCategory::Idle),
            20,
            "gaps unaffected by the marker"
        );
        assert_eq!(cp.total_ns(), 80);
    }

    #[test]
    fn merge_accumulates() {
        let a = critical_path(&[span(1, None, SpanKind::Cpu, 0, 10)]);
        let b = critical_path(&[span(1, None, SpanKind::Io, 0, 5)]);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.ns(PathCategory::Cpu), 10);
        assert_eq!(merged.ns(PathCategory::Io), 5);
        assert_eq!(merged.total_ns(), 15);
    }
}
