//! Chrome trace-event export.
//!
//! Serializes `hsdp_rpc` spans into the Chrome trace-event JSON format
//! (the "JSON Array Format" with an `traceEvents` wrapper object), which
//! Perfetto and `chrome://tracing` load directly. Each platform becomes a
//! "process" and each shard a "thread", so the fleet's per-shard span
//! streams land in separate, labeled swimlanes.
//!
//! Timestamps: trace-event `ts`/`dur` are microseconds; simulator spans are
//! integer nanoseconds. Values are emitted as fixed-point decimal micros
//! (`"{}.{:03}"`) so no float formatting is involved and the output is
//! byte-deterministic.

use hsdp_rpc::span::{Span, SpanKind};

/// One swimlane's worth of spans plus its process/thread labels.
#[derive(Debug, Clone)]
pub struct TraceGroup {
    /// Process name shown by the viewer (platform, e.g. `"spanner"`).
    pub process_name: String,
    /// Process id; group spans from the same platform under one pid.
    pub pid: u32,
    /// Thread id within the process (shard index).
    pub tid: u32,
    /// Thread name shown by the viewer (e.g. `"shard 3"`).
    pub thread_name: String,
    /// The spans to emit on this lane.
    pub spans: Vec<Span>,
}

/// The trace-event `cat` field for a span kind.
#[must_use]
fn kind_category(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Cpu => "cpu",
        SpanKind::Io => "io",
        SpanKind::RemoteWork => "remote",
        SpanKind::Container => "container",
    }
}

/// Formats integer nanoseconds as fixed-point decimal microseconds.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(raw: &str, out: &mut String) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_metadata(out: &mut String, name: &str, pid: u32, tid: u32, arg_key: &str, arg_val: &str) {
    out.push_str(&format!(
        "    {{\"name\": \"{name}\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"{arg_key}\": \""
    ));
    escape(arg_val, out);
    out.push_str("\"}}");
}

/// Serializes `groups` into one Chrome trace-event JSON document.
///
/// Emits `process_name` / `thread_name` metadata events followed by one
/// `"X"` (complete) event per span, annotated with the span's trace id,
/// span id, parent id, and kind in `args`. Output is byte-deterministic
/// for a given input.
#[must_use]
pub fn chrome_trace_json(groups: &[TraceGroup]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };

    // Metadata first: one process_name per distinct pid (first label wins),
    // one thread_name per lane.
    let mut named_pids: Vec<u32> = Vec::new();
    for group in groups {
        if !named_pids.contains(&group.pid) {
            named_pids.push(group.pid);
            sep(&mut out, &mut first);
            push_metadata(
                &mut out,
                "process_name",
                group.pid,
                0,
                "name",
                &group.process_name,
            );
        }
        sep(&mut out, &mut first);
        push_metadata(
            &mut out,
            "thread_name",
            group.pid,
            group.tid,
            "name",
            &group.thread_name,
        );
    }

    for group in groups {
        for span in &group.spans {
            sep(&mut out, &mut first);
            let start = span.start.as_nanos();
            let dur = span.end.as_nanos().saturating_sub(start);
            out.push_str("    {\"name\": \"");
            escape(&span.name, &mut out);
            out.push_str(&format!(
                "\", \"cat\": \"{cat}\", \"ph\": \"X\", \"ts\": {ts}, \"dur\": {dur}, \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"trace\": {trace}, \"span\": {span_id}, \"parent\": {parent}}}}}",
                cat = kind_category(span.kind),
                ts = micros(start),
                dur = micros(dur),
                pid = group.pid,
                tid = group.tid,
                trace = span.trace.0,
                span_id = span.id.0,
                parent = span
                    .parent
                    .map_or_else(|| "null".to_string(), |p| p.0.to_string()),
            ));
        }
    }

    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_rpc::span::{SpanId, TraceId};
    use hsdp_simcore::time::SimTime;

    fn sample_group() -> TraceGroup {
        TraceGroup {
            process_name: "spanner".to_string(),
            pid: 1,
            tid: 3,
            thread_name: "shard 3".to_string(),
            spans: vec![
                Span {
                    trace: TraceId(9),
                    id: SpanId(1),
                    parent: None,
                    name: "spanner.query".to_string(),
                    kind: SpanKind::Container,
                    start: SimTime::from_nanos(1_500),
                    end: SimTime::from_nanos(42_750),
                    request: hsdp_core::request::RequestId::UNTAGGED,
                },
                Span {
                    trace: TraceId(9),
                    id: SpanId(2),
                    parent: Some(SpanId(1)),
                    name: "consensus \"r1\"".to_string(),
                    kind: SpanKind::RemoteWork,
                    start: SimTime::from_nanos(2_000),
                    end: SimTime::from_nanos(30_000),
                    request: hsdp_core::request::RequestId::UNTAGGED,
                },
            ],
        }
    }

    #[test]
    fn emits_valid_json_with_metadata_and_events() {
        let doc = chrome_trace_json(&[sample_group()]);
        crate::json::validate(&doc).expect("exporter output must be valid JSON");
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("\"ph\": \"X\""));
        // 1500 ns -> 1.500 us fixed-point.
        assert!(doc.contains("\"ts\": 1.500"));
        assert!(doc.contains("\"dur\": 41.250"));
        // Span name quotes are escaped.
        assert!(doc.contains("consensus \\\"r1\\\""));
        assert!(doc.contains("\"parent\": 1"));
        assert!(doc.contains("\"parent\": null"));
    }

    #[test]
    fn process_metadata_deduplicates_by_pid() {
        let mut lane_a = sample_group();
        lane_a.tid = 0;
        let mut lane_b = sample_group();
        lane_b.tid = 1;
        lane_b.spans.clear();
        let doc = chrome_trace_json(&[lane_a, lane_b]);
        crate::json::validate(&doc).expect("valid JSON");
        assert_eq!(doc.matches("\"process_name\"").count(), 1);
        assert_eq!(doc.matches("\"thread_name\"").count(), 2);
    }

    #[test]
    fn empty_input_is_still_valid() {
        let doc = chrome_trace_json(&[]);
        crate::json::validate(&doc).expect("valid JSON");
        assert!(doc.contains("\"traceEvents\": [\n\n  ]"));
    }

    #[test]
    fn output_is_deterministic() {
        let a = chrome_trace_json(&[sample_group()]);
        let b = chrome_trace_json(&[sample_group()]);
        assert_eq!(a, b);
    }
}
