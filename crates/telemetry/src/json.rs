//! Minimal JSON syntax validator.
//!
//! The telemetry artifacts (`metrics.json`, `trace.json`,
//! `critical_path.json`) are hand-serialized; this recursive-descent
//! checker lets tests and smoke steps verify the emitted bytes are valid
//! JSON without pulling in an external parser. It validates *syntax* per
//! RFC 8259 (it does not build a value tree).

/// Maximum nesting depth accepted before bailing out; the artifacts here
/// nest a handful of levels, so this bounds a malicious/degenerate input.
const MAX_DEPTH: usize = 128;

/// A syntax error with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable description.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Validates that `input` is a single well-formed JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first syntax violation.
pub fn validate(input: &str) -> Result<(), JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after document"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &'static [u8]) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), JsonError> {
        if depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.consume(b'{', "expected '{'")?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.consume(b':', "expected ':' after object key")?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), JsonError> {
        if depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.consume(b'[', "expected '['")?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.consume(b'"', "expected '\"'")?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                                    return Err(self.err("invalid \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.err("expected digit after '.'"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            self.digits();
        }
        Ok(())
    }

    fn digits(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            r#""hi \n é""#,
            r#"{"a": [1, 2, {"b": null}], "c": "x"}"#,
            " { \"k\" : [ ] } ",
        ] {
            assert!(validate(doc).is_ok(), "should accept: {doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "01",
            "1.",
            "\"unterminated",
            "\"bad \\x escape\"",
            "nul",
            "{} extra",
            "[1 2]",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }

    #[test]
    fn depth_guard_trips() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(validate(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(validate(&ok).is_ok());
    }

    #[test]
    fn error_reports_offset() {
        let err = validate("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn depth_guard_boundary_is_exact() {
        // MAX_DEPTH nested containers pass; one more trips the guard.
        let at_limit = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(validate(&at_limit).is_ok(), "exactly MAX_DEPTH is legal");
        let over = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(validate(&over).is_err(), "MAX_DEPTH + 1 must trip");
        // Mixed object/array nesting counts the same.
        let mixed = "{\"k\":".repeat(MAX_DEPTH / 2) + "0" + &"}".repeat(MAX_DEPTH / 2);
        assert!(validate(&mixed).is_ok());
    }

    #[test]
    fn string_escape_edge_cases() {
        // Escaped surrogate pairs and lone escaped surrogates are both
        // syntactically legal JSON escapes (the validator checks syntax,
        // not unicode pairing).
        for doc in [
            r#""\ud83d\ude00""#, // escaped surrogate pair
            r#""\ud800""#,       // lone high surrogate, still 4 hex digits
            r#""\u0000""#,       // escaped NUL
            r#""\\\" \/ \b \f \n \r \t""#,
        ] {
            assert!(validate(doc).is_ok(), "should accept: {doc}");
        }
        for doc in [
            r#""\u12""#,   // truncated hex
            r#""\u12g4""#, // non-hex digit
            "\"a\u{0}b\"", // raw control byte must be escaped
            r#""\q""#,     // unknown escape
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }

    #[test]
    fn number_extremes() {
        for doc in [
            "0",
            "-0",
            "1e999", // syntactically fine; magnitude is not checked
            "-1E-999",
            "0.00000000000000000000001",
            "123456789012345678901234567890", // digits beyond u64/i64
            "2e+10",
        ] {
            assert!(validate(doc).is_ok(), "should accept: {doc}");
        }
        for doc in [
            "-", "+1", "1e", "1e+", ".5", "0x10", "1_000", "NaN", "Infinity",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }
}
