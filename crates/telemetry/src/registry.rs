//! The metrics registry: counters, gauges, and log-linear histograms.
//!
//! Everything here is built for *deterministic aggregation*. The fleet
//! driver runs one registry per shard; shard registries are pure functions
//! of the shard seed, and [`MetricsRegistry::merge`] is commutative and
//! associative over every metric kind (counters add, gauges take the max,
//! histograms add per fixed bucket). Merging per-shard registries in
//! canonical shard order therefore yields byte-identical
//! [`MetricsRegistry::to_json`] output at any `parallelism` setting — the
//! same guarantee `hsdp_simcore::pool` gives the record stream.

use std::collections::BTreeMap;

use hsdp_core::category::{CoreComputeOp, CpuCategory, DatacenterTax, SystemTax};
use hsdp_core::request::RequestId;
use hsdp_rng::derive_seed;
use hsdp_simcore::time::SimDuration;

/// A metric identity: `(subsystem, metric, label)`, all static so recording
/// never allocates. The label slot is `""` for unlabeled metrics and the
/// operation label (e.g. `"commit"`) for per-operation series.
pub type MetricKey = (&'static str, &'static str, &'static str);

/// Renders a key as the canonical `subsystem/metric[/label]` path.
#[must_use]
pub fn key_path(key: MetricKey) -> String {
    let (subsystem, metric, label) = key;
    if label.is_empty() {
        format!("{subsystem}/{metric}")
    } else {
        format!("{subsystem}/{metric}/{label}")
    }
}

/// The static key fragment for one fine-grained CPU cycle category, used to
/// pin GWP-style meter accounting to telemetry counters without allocating.
#[must_use]
pub fn category_key(category: CpuCategory) -> &'static str {
    match category {
        CpuCategory::Core(op) => match op {
            CoreComputeOp::Read => "core.read",
            CoreComputeOp::Write => "core.write",
            CoreComputeOp::Compaction => "core.compaction",
            CoreComputeOp::Consensus => "core.consensus",
            CoreComputeOp::Query => "core.query",
            CoreComputeOp::Aggregate => "core.aggregate",
            CoreComputeOp::Compute => "core.compute",
            CoreComputeOp::Destructure => "core.destructure",
            CoreComputeOp::Filter => "core.filter",
            CoreComputeOp::Join => "core.join",
            CoreComputeOp::Materialize => "core.materialize",
            CoreComputeOp::Project => "core.project",
            CoreComputeOp::Sort => "core.sort",
            CoreComputeOp::MiscCore => "core.misc",
            CoreComputeOp::Uncategorized => "core.uncategorized",
        },
        CpuCategory::Datacenter(tax) => match tax {
            DatacenterTax::Compression => "dc.compression",
            DatacenterTax::Cryptography => "dc.cryptography",
            DatacenterTax::DataMovement => "dc.data_movement",
            DatacenterTax::MemAllocation => "dc.mem_allocation",
            DatacenterTax::Protobuf => "dc.protobuf",
            DatacenterTax::Rpc => "dc.rpc",
        },
        CpuCategory::System(tax) => match tax {
            SystemTax::Edac => "sys.edac",
            SystemTax::FileSystems => "sys.file_systems",
            SystemTax::OtherMemoryOps => "sys.other_memory_ops",
            SystemTax::Multithreading => "sys.multithreading",
            SystemTax::Networking => "sys.networking",
            SystemTax::OperatingSystems => "sys.operating_systems",
            SystemTax::Stl => "sys.stl",
            SystemTax::MiscSystem => "sys.misc",
        },
    }
}

/// Linear sub-buckets per power-of-two octave. 16 sub-buckets bound the
/// relative quantization error at 1/16 ≈ 6.25%, HDR-histogram style.
pub const SUB_BUCKETS: u64 = 16;

/// Maps a value to its fixed log-linear bucket index.
///
/// Values below [`SUB_BUCKETS`] get exact unit buckets; above that, each
/// power-of-two octave splits into [`SUB_BUCKETS`] linear sub-buckets. The
/// layout is a pure function of the value — never of the data distribution
/// — which is what makes histogram merge order-independent.
#[must_use]
pub fn bucket_index(value: u64) -> u16 {
    if value < SUB_BUCKETS {
        // audit: allow(cast, value < 16 fits u16 exactly)
        return value as u16;
    }
    let exponent = u64::from(63 - value.leading_zeros());
    let sub = (value >> (exponent - 4)) & (SUB_BUCKETS - 1);
    // audit: allow(cast, exponent <= 63 so the index is at most 975)
    ((exponent - 3) * SUB_BUCKETS + sub) as u16
}

/// The inclusive lower bound of bucket `index` (inverse of
/// [`bucket_index`]).
#[must_use]
pub fn bucket_lower_bound(index: u16) -> u64 {
    let index = u64::from(index);
    if index < SUB_BUCKETS {
        return index;
    }
    let exponent = index / SUB_BUCKETS + 3;
    let sub = index % SUB_BUCKETS;
    (1u64 << exponent) + (sub << (exponent - 4))
}

/// Salt separating exemplar priorities from every other `derive_seed`
/// stream in the workspace.
const EXEMPLAR_SALT: u64 = 0x00EE_EE00;

/// A deterministic exemplar: one representative tagged observation kept
/// per histogram bucket, OpenMetrics-style, so a quantile estimate can be
/// traced back to a concrete request.
///
/// Selection is reservoir-free and order-independent: each candidate's
/// priority is `derive_seed(EXEMPLAR_SALT, request, value)` and the bucket
/// keeps the candidate with the *minimum* `(priority, request, value)`.
/// A minimum over a set does not depend on arrival order, so recording
/// order, shard split, and merge order all yield the same exemplar — the
/// property the byte-identity suite pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The request whose observation this is.
    pub request: RequestId,
    /// The observed value (nanoseconds for latency histograms).
    pub value: u64,
    priority: u64,
}

impl Exemplar {
    fn new(request: RequestId, value: u64) -> Self {
        Exemplar {
            request,
            value,
            priority: derive_seed(EXEMPLAR_SALT, request.0, value),
        }
    }

    /// The deterministic selection rank (lower wins).
    fn rank(&self) -> (u64, u64, u64) {
        (self.priority, self.request.0, self.value)
    }
}

/// A fixed-layout log-linear histogram (HDR style).
///
/// Buckets are stored sparsely; `count`/`sum`/`min`/`max` ride along so
/// reports never need to re-derive totals from buckets. Tagged recordings
/// additionally keep one deterministic [`Exemplar`] per bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: BTreeMap<u16, u64>,
    exemplars: BTreeMap<u16, Exemplar>,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.min = if self.count == 0 {
            value
        } else {
            self.min.min(value)
        };
        self.max = self.max.max(value);
        self.count += 1;
        self.sum += u128::from(value);
        *self.buckets.entry(bucket_index(value)).or_insert(0) += 1;
    }

    /// Records one observation attributed to `request`, keeping it as the
    /// bucket's exemplar if it wins the deterministic min-priority draw.
    /// Untagged requests record plain (background work never becomes an
    /// exemplar).
    pub fn record_tagged(&mut self, value: u64, request: RequestId) {
        self.record(value);
        if !request.is_tagged() {
            return;
        }
        let candidate = Exemplar::new(request, value);
        let slot = self
            .exemplars
            .entry(bucket_index(value))
            .or_insert(candidate);
        if candidate.rank() < slot.rank() {
            *slot = candidate;
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            // audit: allow(cast, reporting-only conversion to float)
            self.sum as f64 / self.count as f64
        }
    }

    /// The lower bound of the bucket where the cumulative count first
    /// reaches `q * count` (`0.0 <= q <= 1.0`); 0 when empty. A bucket-
    /// resolution quantile estimator, accurate to the 1/16 bucket width.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // audit: allow(cast, ceil of a clamped non-negative f64 rank fits u64)
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&index, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(index);
            }
        }
        self.max
    }

    /// Interpolated quantile: finds the bucket where the cumulative count
    /// crosses `q * count`, then interpolates linearly within that bucket's
    /// `[lower, upper)` range by the fraction of the bucket's observations
    /// below the target rank. The result is clamped to the observed
    /// `[min, max]`, so `q = 0` reports the minimum and `q = 1` the maximum
    /// exactly. 0.0 when empty.
    ///
    /// Like everything else on the histogram, this is a pure function of
    /// the (merge-order-independent) bucket contents.
    #[must_use]
    pub fn quantile_interpolated(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // audit: allow(cast, count to f64 for a continuous rank; exact below 2^53)
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        // audit: allow(cast, min/max to f64 for clamping a reported estimate)
        let (lo_clamp, hi_clamp) = (self.min() as f64, self.max as f64);
        let mut seen = 0u64;
        for (&index, &n) in &self.buckets {
            let before = seen;
            seen += n;
            // audit: allow(cast, cumulative counts to f64 for interpolation)
            if seen as f64 >= rank {
                // audit: allow(cast, bucket bounds to f64 for interpolation)
                let lower = bucket_lower_bound(index) as f64;
                // audit: allow(cast, bucket bounds to f64 for interpolation)
                let upper = bucket_lower_bound(index.saturating_add(1)) as f64;
                // audit: allow(cast, bucket count to f64 for interpolation)
                let fraction = ((rank - before as f64) / n as f64).clamp(0.0, 1.0);
                return (lower + (upper - lower) * fraction).clamp(lo_clamp, hi_clamp);
            }
        }
        hi_clamp
    }

    /// Interpolated median, rounded to the nearest integer unit.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.rounded_quantile(0.50)
    }

    /// Interpolated 95th percentile, rounded to the nearest integer unit.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.rounded_quantile(0.95)
    }

    /// Interpolated 99th percentile, rounded to the nearest integer unit.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.rounded_quantile(0.99)
    }

    fn rounded_quantile(&self, q: f64) -> u64 {
        // audit: allow(cast, non-negative rounded f64 back to the integer unit domain)
        self.quantile_interpolated(q).round() as u64
    }

    /// Folds `other` into `self`. Commutative and associative, so any merge
    /// order over a set of histograms yields the same result.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
        for (&index, other_ex) in &other.exemplars {
            let slot = self.exemplars.entry(index).or_insert(*other_ex);
            if other_ex.rank() < slot.rank() {
                *slot = *other_ex;
            }
        }
    }

    /// The non-empty buckets as `(index, count)` pairs, ascending.
    #[must_use]
    pub fn buckets(&self) -> Vec<(u16, u64)> {
        self.buckets.iter().map(|(&i, &n)| (i, n)).collect()
    }

    /// The per-bucket exemplars as `(index, exemplar)` pairs, ascending.
    #[must_use]
    pub fn exemplars(&self) -> Vec<(u16, Exemplar)> {
        self.exemplars.iter().map(|(&i, &e)| (i, e)).collect()
    }
}

/// Interpolated quantile snapshot of one histogram — the shape the
/// profile-history store persists per commit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Interpolated median.
    pub p50: u64,
    /// Interpolated 95th percentile.
    pub p95: u64,
    /// Interpolated 99th percentile.
    pub p99: u64,
}

/// The per-shard (and, after merging, fleet-wide) metrics registry.
///
/// All three metric kinds key on [`MetricKey`] and live in `BTreeMap`s, so
/// iteration — and therefore [`MetricsRegistry::to_json`] — is in canonical
/// key order regardless of recording order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    disabled: bool,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty, enabled registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry whose recording methods are no-ops — the
    /// uninstrumented baseline for overhead probes.
    #[must_use]
    pub fn disabled() -> Self {
        MetricsRegistry {
            disabled: true,
            ..Self::default()
        }
    }

    /// True when recording is live.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !self.disabled
    }

    /// Adds `delta` to a monotonic counter.
    pub fn counter_add(&mut self, key: MetricKey, delta: u64) {
        if self.disabled || delta == 0 {
            return;
        }
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Raises a high-watermark gauge to at least `value`. Gauges merge by
    /// maximum, the only order-independent fold for level signals.
    pub fn gauge_max(&mut self, key: MetricKey, value: u64) {
        if self.disabled {
            return;
        }
        let slot = self.gauges.entry(key).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Records one observation into a histogram.
    pub fn record(&mut self, key: MetricKey, value: u64) {
        if self.disabled {
            return;
        }
        self.histograms.entry(key).or_default().record(value);
    }

    /// Records a simulated duration (in nanoseconds) into a histogram.
    pub fn record_duration(&mut self, key: MetricKey, duration: SimDuration) {
        self.record(key, duration.as_nanos());
    }

    /// Records one observation attributed to `request`, feeding the
    /// histogram's deterministic per-bucket exemplars.
    pub fn record_tagged(&mut self, key: MetricKey, value: u64, request: RequestId) {
        if self.disabled {
            return;
        }
        self.histograms
            .entry(key)
            .or_default()
            .record_tagged(value, request);
    }

    /// Records a simulated duration attributed to `request`.
    pub fn record_duration_tagged(
        &mut self,
        key: MetricKey,
        duration: SimDuration,
        request: RequestId,
    ) {
        self.record_tagged(key, duration.as_nanos(), request);
    }

    /// A counter's current value (0 when never touched).
    #[must_use]
    pub fn counter(&self, key: MetricKey) -> u64 {
        self.counters.get(&key).copied().unwrap_or(0)
    }

    /// A gauge's current value (0 when never touched).
    #[must_use]
    pub fn gauge(&self, key: MetricKey) -> u64 {
        self.gauges.get(&key).copied().unwrap_or(0)
    }

    /// A histogram, if any observation was recorded under `key`.
    #[must_use]
    pub fn histogram(&self, key: MetricKey) -> Option<&Histogram> {
        self.histograms.get(&key)
    }

    /// All histograms with their keys, in canonical key order — the
    /// iteration exemplar joins (e.g. `tail_report`) walk.
    #[must_use]
    pub fn histograms(&self) -> Vec<(MetricKey, &Histogram)> {
        self.histograms.iter().map(|(&k, h)| (k, h)).collect()
    }

    /// Quantile summaries for every histogram, in canonical key-path
    /// order. This is the per-commit profile-history extraction: one
    /// `(path, count/p50/p95/p99)` row per metric, deterministic because
    /// the registry itself is.
    #[must_use]
    pub fn histogram_summaries(&self) -> Vec<(String, HistogramSummary)> {
        self.histograms
            .iter()
            .map(|(key, h)| {
                (
                    key_path(*key),
                    HistogramSummary {
                        count: h.count(),
                        p50: h.p50(),
                        p95: h.p95(),
                        p99: h.p99(),
                    },
                )
            })
            .collect()
    }

    /// All counters, in canonical key order.
    #[must_use]
    pub fn counters(&self) -> Vec<(MetricKey, u64)> {
        self.counters.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Sums every counter whose `(subsystem, metric)` prefix matches.
    #[must_use]
    pub fn counter_prefix_sum(&self, subsystem: &str, metric: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((s, m, _), _)| *s == subsystem && *m == metric)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Sums every counter in `subsystem` (e.g. all `"cpu"` work counters).
    #[must_use]
    pub fn counter_subsystem_sum(&self, subsystem: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((s, _, _), _)| *s == subsystem)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Folds `other` into `self`: counters add, gauges take the max,
    /// histograms merge bucket-wise. Commutative and associative, so the
    /// serialized output of a fold is independent of merge order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&key, &value) in &other.counters {
            *self.counters.entry(key).or_insert(0) += value;
        }
        for (&key, &value) in &other.gauges {
            let slot = self.gauges.entry(key).or_insert(0);
            *slot = (*slot).max(value);
        }
        for (key, histogram) in &other.histograms {
            self.histograms.entry(*key).or_default().merge(histogram);
        }
    }

    /// Serializes the registry as canonical JSON: sorted keys, integer-only
    /// values, fixed field order. Two registries render byte-identically if
    /// and only if they hold the same metrics.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"hsdp-telemetry-metrics/2\",\n");
        out.push_str("  \"counters\": {");
        push_scalar_map(&mut out, &self.counters);
        out.push_str("},\n  \"gauges\": {");
        push_scalar_map(&mut out, &self.gauges);
        out.push_str("},\n  \"histograms\": {");
        for (i, (key, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(&key_path(*key));
            out.push_str(&format!(
                "\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.p50(),
                h.p95(),
                h.p99()
            ));
            for (j, (index, n)) in h.buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{index}, {n}]"));
            }
            out.push_str("], \"exemplars\": [");
            for (j, (index, ex)) in h.exemplars().into_iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{index}, {}, {}]", ex.request.0, ex.value));
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Renders a sorted `key -> integer` map body (no surrounding braces).
fn push_scalar_map(out: &mut String, map: &BTreeMap<MetricKey, u64>) {
    for (i, (key, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        out.push_str(&key_path(*key));
        out.push_str(&format!("\": {value}"));
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_continuous_and_invertible() {
        // Every value maps into a bucket whose bounds contain it, and
        // indexes are non-decreasing in the value.
        let mut last = 0u16;
        for value in (0..4096u64).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let index = bucket_index(value);
            assert!(index >= last || value < 4096, "index regressed at {value}");
            if value < 4096 {
                last = last.max(index);
            }
            let lo = bucket_lower_bound(index);
            assert!(lo <= value, "lower bound {lo} > value {value}");
            if index < bucket_index(u64::MAX) {
                let hi = bucket_lower_bound(index + 1);
                assert!(value < hi, "value {value} >= next bound {hi}");
            }
        }
        // Unit buckets below SUB_BUCKETS are exact.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn histogram_tracks_stats() {
        let mut h = Histogram::new();
        for v in [5u64, 100, 17, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 100_122);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 100_000);
        assert!(h.mean() > 25_000.0);
        assert_eq!(h.quantile(0.0), 5);
        assert!(h.quantile(1.0) <= 100_000);
        assert!(h.quantile(0.5) >= 16);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_interpolated(0.5), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn interpolated_quantiles_land_inside_the_bucket() {
        // A uniform 1..=1000 stream: the interpolated percentiles should
        // track the true ones to within one log-linear bucket width
        // (1/16 relative error above 16), far tighter than the
        // lower-bound-only estimator.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, want) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile_interpolated(q);
            let err = (got - want).abs() / want;
            assert!(err < 1.0 / 16.0, "q={q}: got {got}, want ~{want}");
        }
        assert_eq!(h.quantile_interpolated(0.0), 1.0, "q=0 is the min");
        assert_eq!(h.quantile_interpolated(1.0), 1000.0, "q=1 is the max");
        // The rounded accessors are ordered.
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        assert!(h.p99() <= h.max());
    }

    #[test]
    fn interpolated_quantiles_clamp_to_observed_range() {
        // A single observation: every quantile is that value, even though
        // its bucket spans a wider range.
        let mut h = Histogram::new();
        h.record(1_000_000);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_interpolated(q), 1_000_000.0, "q={q}");
        }
        assert_eq!(h.p50(), 1_000_000);
        // Out-of-range q is clamped, not propagated.
        assert_eq!(h.quantile_interpolated(-3.0), 1_000_000.0);
        assert_eq!(h.quantile_interpolated(7.0), 1_000_000.0);
    }

    #[test]
    fn interpolated_quantiles_are_merge_invariant() {
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for v in 0..500u64 {
            let value = v * 977 % 9_973;
            whole.record(value);
            if v % 2 == 0 {
                left.record(value);
            } else {
                right.record(value);
            }
        }
        let mut merged = Histogram::new();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged, whole);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(
                merged.quantile_interpolated(q),
                whole.quantile_interpolated(q)
            );
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let mut parts: Vec<MetricsRegistry> = Vec::new();
        for shard in 0..5u64 {
            let mut r = MetricsRegistry::new();
            r.counter_add(("fleet", "queries", "read"), shard + 1);
            r.gauge_max(("fleet", "memtable_bytes", ""), shard * 100);
            for v in 0..20 {
                r.record(("fleet", "latency_ns", ""), shard * 977 + v * 13);
            }
            parts.push(r);
        }
        let fold = |order: &[usize]| {
            let mut merged = MetricsRegistry::new();
            for &i in order {
                merged.merge(&parts[i]);
            }
            merged.to_json()
        };
        let canonical = fold(&[0, 1, 2, 3, 4]);
        assert_eq!(canonical, fold(&[4, 3, 2, 1, 0]));
        assert_eq!(canonical, fold(&[2, 0, 4, 1, 3]));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = MetricsRegistry::disabled();
        r.counter_add(("a", "b", ""), 5);
        r.gauge_max(("a", "g", ""), 5);
        r.record(("a", "h", ""), 5);
        assert!(!r.is_enabled());
        assert_eq!(r.to_json(), MetricsRegistry::new().to_json());
    }

    #[test]
    fn json_shape_is_canonical() {
        let mut r = MetricsRegistry::new();
        r.counter_add(("z", "last", ""), 1);
        r.counter_add(("a", "first", "label"), 2);
        r.record(("m", "hist", ""), 42);
        let json = r.to_json();
        let first = json.find("a/first/label").unwrap_or(usize::MAX);
        let last = json.find("z/last").unwrap_or(0);
        assert!(first < last, "keys must render sorted:\n{json}");
        assert!(json.contains("\"count\": 1"));
        assert!(
            json.contains("\"p50\": 42, \"p95\": 42, \"p99\": 42"),
            "quantiles surface in the histogram JSON:\n{json}"
        );
        crate::json::validate(&json).expect("registry JSON must parse");
    }

    #[test]
    fn exemplar_selection_is_recording_order_independent() {
        use hsdp_core::category::Platform;
        let observations: Vec<(u64, RequestId)> = (0..64u64)
            .map(|i| {
                (
                    1_000 + i * 37 % 50,
                    RequestId::tag(Platform::Spanner, 0, i as usize),
                )
            })
            .collect();
        let mut forward = Histogram::new();
        for &(v, r) in &observations {
            forward.record_tagged(v, r);
        }
        let mut reverse = Histogram::new();
        for &(v, r) in observations.iter().rev() {
            reverse.record_tagged(v, r);
        }
        assert_eq!(forward, reverse);
        assert!(!forward.exemplars().is_empty());
    }

    #[test]
    fn exemplar_merge_equals_whole_stream() {
        use hsdp_core::category::Platform;
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for i in 0..200u64 {
            let value = i * 977 % 9_973;
            let request = RequestId::tag(Platform::BigQuery, (i % 4) as usize, i as usize);
            whole.record_tagged(value, request);
            if i % 2 == 0 {
                left.record_tagged(value, request);
            } else {
                right.record_tagged(value, request);
            }
        }
        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right.clone();
        ba.merge(&left);
        assert_eq!(ab, whole, "split+merge matches the whole stream");
        assert_eq!(ab, ba, "merge is commutative over exemplars");
    }

    #[test]
    fn untagged_recordings_never_become_exemplars() {
        let mut h = Histogram::new();
        h.record_tagged(500, RequestId::UNTAGGED);
        assert_eq!(h.count(), 1, "the observation still counts");
        assert!(h.exemplars().is_empty());
    }

    #[test]
    fn tagged_json_surfaces_exemplars() {
        use hsdp_core::category::Platform;
        let mut r = MetricsRegistry::new();
        let request = RequestId::tag(Platform::Spanner, 1, 2);
        r.record_tagged(("m", "hist", ""), 42, request);
        let json = r.to_json();
        assert!(
            json.contains(&format!(
                "\"exemplars\": [[{}, {}, 42]]",
                bucket_index(42),
                request.0
            )),
            "exemplar rides in the histogram JSON:\n{json}"
        );
        crate::json::validate(&json).expect("registry JSON must parse");
    }

    #[test]
    fn category_keys_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for op in CoreComputeOp::ANALYTICS_OPS
            .iter()
            .chain(CoreComputeOp::DATABASE_OPS.iter())
        {
            seen.insert(category_key(CpuCategory::Core(*op)));
        }
        for tax in DatacenterTax::ALL {
            assert!(seen.insert(category_key(CpuCategory::Datacenter(tax))));
        }
        for tax in SystemTax::ALL {
            assert!(seen.insert(category_key(CpuCategory::System(tax))));
        }
        // 15 core ops (union of the two tables), 6 datacenter, 8 system.
        assert_eq!(seen.len(), 15 + 6 + 8);
    }
}
