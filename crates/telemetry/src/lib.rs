//! # hsdp-telemetry
//!
//! The fleet-wide observability layer: the paper's entire characterization
//! pipeline *is* observability infrastructure — Dapper RPC traces
//! (Section 4.1), GWP fleet CPU profiles (Section 5.1), and performance
//! counters — and this crate is where those signals become exportable,
//! mergeable, and attributable:
//!
//! - [`registry`] — a low-overhead metrics registry (counters, gauges, and
//!   log-linear latency histograms with a fixed HDR-style bucket layout)
//!   whose per-shard instances merge deterministically and byte-identically
//!   at any `parallelism` setting, matching the determinism guarantee of
//!   `hsdp_simcore::pool`.
//! - [`export`] — span export from `hsdp_rpc` traces to Chrome trace-event
//!   JSON, loadable in Perfetto / `chrome://tracing`, with platform,
//!   category, and shard metadata.
//! - [`critical_path`] — the Dapper tree-walk (Section 3): attributes each
//!   trace's wall-clock to the slowest child chain, yielding per-category
//!   critical-path fractions alongside the GWP-style CPU fractions.
//! - [`json`] — a minimal JSON syntax validator so emitted artifacts can be
//!   smoke-checked without external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod critical_path;
pub mod export;
pub mod json;
pub mod registry;

pub use critical_path::{critical_path, CriticalPathBreakdown, PathCategory};
pub use export::{chrome_trace_json, TraceGroup};
pub use registry::{
    category_key, Exemplar, Histogram, HistogramSummary, MetricKey, MetricsRegistry,
};
