//! End-to-end fixtures for the auditor: each rule must fire on a seeded
//! violation, and each rule's pragma must suppress it.
//!
//! Every test scaffolds a miniature workspace under the system temp dir
//! (std-only; no tempfile crate) and runs [`xtask::run_audit`] against it.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::pragma::RuleKind;
use xtask::{run_audit, AuditReport};

/// Creates a unique scratch workspace for one test.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("xtask-fixture-{}-{name}", std::process::id()));
        // A stale dir from a crashed run would contaminate the scan.
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) -> &Self {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create fixture dirs");
        }
        fs::write(path, content).expect("write fixture file");
        self
    }

    fn audit(&self) -> AuditReport {
        run_audit(&self.root, &[]).expect("audit runs")
    }

    fn audit_rule(&self, rule: RuleKind) -> AuditReport {
        run_audit(&self.root, &[rule]).expect("audit runs")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn count(report: &AuditReport, rule: RuleKind) -> usize {
    report.count(rule)
}

#[test]
fn cast_rule_fires_and_pragma_suppresses() {
    let fx = Fixture::new("cast");
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn f(total_secs: u64) -> u32 {\n    total_secs as u32\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Cast);
    assert_eq!(count(&report, RuleKind::Cast), 1, "{:?}", report.findings);
    assert!(!report.is_clean());

    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn f(total_secs: u64) -> u32 {\n    // audit: allow(cast, display-only truncation)\n    total_secs as u32\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Cast);
    assert_eq!(count(&report, RuleKind::Cast), 0, "{:?}", report.findings);
    assert_eq!(report.pragmas_honoured, 1);
}

#[test]
fn cast_rule_catches_mixed_unit_arithmetic() {
    let fx = Fixture::new("cast-mixed");
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn f(total_bytes: f64, total_secs: f64) -> f64 {\n    total_bytes + total_secs\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Cast);
    assert_eq!(count(&report, RuleKind::Cast), 1, "{:?}", report.findings);
}

#[test]
fn cast_rule_exempts_units_layer_and_tests() {
    let fx = Fixture::new("cast-exempt");
    let offending = "pub fn f(total_secs: u64) -> u32 { total_secs as u32 }\n";
    fx.write("crates/core/src/units.rs", offending);
    fx.write("crates/demo/tests/check.rs", offending);
    fx.write(
        "crates/demo/src/lib.rs",
        "#[cfg(test)]\nmod tests {\n    pub fn f(total_secs: u64) -> u32 { total_secs as u32 }\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Cast);
    assert_eq!(count(&report, RuleKind::Cast), 0, "{:?}", report.findings);
}

#[test]
fn panic_rule_fires_and_pragma_suppresses() {
    let fx = Fixture::new("panic");
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Panic);
    assert_eq!(count(&report, RuleKind::Panic), 1, "{:?}", report.findings);

    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn f(x: Option<u8>) -> u8 {\n    // audit: allow(panic, caller guarantees Some by contract)\n    x.unwrap()\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Panic);
    assert_eq!(count(&report, RuleKind::Panic), 0, "{:?}", report.findings);
}

#[test]
fn panic_rule_skips_binaries_tests_and_macros_in_strings() {
    let fx = Fixture::new("panic-scope");
    fx.write(
        "crates/demo/src/main.rs",
        "fn main() { None::<u8>.unwrap(); }\n",
    );
    fx.write(
        "crates/demo/src/bin/tool.rs",
        "fn main() { panic!(\"fail fast\"); }\n",
    );
    fx.write(
        "crates/demo/tests/t.rs",
        "#[test]\nfn t() { None::<u8>.unwrap(); }\n",
    );
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn f() -> &'static str {\n    \"do not panic!(now) or .unwrap() here\"\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Panic);
    assert_eq!(count(&report, RuleKind::Panic), 0, "{:?}", report.findings);
}

#[test]
fn citation_rule_fires_and_pragma_suppresses() {
    let fx = Fixture::new("citation");
    fx.write(
        "crates/core/src/model.rs",
        "/// Computes a speedup.\npub fn speedup() -> f64 {\n    2.0\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Citation);
    assert_eq!(
        count(&report, RuleKind::Citation),
        1,
        "{:?}",
        report.findings
    );

    // A citation satisfies the rule...
    fx.write(
        "crates/core/src/model.rs",
        "/// Computes a speedup per Eq. 9.\npub fn speedup() -> f64 {\n    2.0\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Citation);
    assert_eq!(
        count(&report, RuleKind::Citation),
        0,
        "{:?}",
        report.findings
    );

    // ...and so does a pragma with a reason.
    fx.write(
        "crates/core/src/model.rs",
        "/// Plumbing helper.\n// audit: allow(citation, pure plumbing with no paper counterpart)\npub fn speedup() -> f64 {\n    2.0\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Citation);
    assert_eq!(
        count(&report, RuleKind::Citation),
        0,
        "{:?}",
        report.findings
    );
}

#[test]
fn citation_rule_only_covers_model_files_and_public_items() {
    let fx = Fixture::new("citation-scope");
    let uncited = "/// No citation here.\npub fn f() -> u8 {\n    0\n}\n";
    fx.write("crates/core/src/other.rs", uncited);
    fx.write("crates/demo/src/lib.rs", uncited);
    fx.write(
        "crates/core/src/study.rs",
        "/// Private helper.\nfn helper() {}\n\n/// Crate-internal.\npub(crate) fn plumbing() {}\n",
    );
    let report = fx.audit_rule(RuleKind::Citation);
    assert_eq!(
        count(&report, RuleKind::Citation),
        0,
        "{:?}",
        report.findings
    );
}

#[test]
fn dep_rule_fires_and_pragma_suppresses() {
    let fx = Fixture::new("dep");
    fx.write(
        "crates/demo/Cargo.toml",
        "[package]\nname = \"demo\"\n\n[dependencies]\nphantom-dep = \"1\"\n",
    );
    fx.write("crates/demo/src/lib.rs", "pub fn f() {}\n");
    let report = fx.audit_rule(RuleKind::Dep);
    assert_eq!(count(&report, RuleKind::Dep), 1, "{:?}", report.findings);

    fx.write(
        "crates/demo/Cargo.toml",
        "[package]\nname = \"demo\"\n\n[dependencies]\nphantom-dep = \"1\" # audit: allow(dep, staged for the next change)\n",
    );
    let report = fx.audit_rule(RuleKind::Dep);
    assert_eq!(count(&report, RuleKind::Dep), 0, "{:?}", report.findings);
    assert_eq!(report.pragmas_honoured, 1);
}

#[test]
fn dep_rule_sees_usage_anywhere_in_the_crate() {
    let fx = Fixture::new("dep-used");
    fx.write(
        "crates/demo/Cargo.toml",
        "[package]\nname = \"demo\"\n\n[dependencies]\nreal-dep = \"1\"\n\n[dev-dependencies]\ntest-dep = \"1\"\n",
    );
    fx.write("crates/demo/src/lib.rs", "pub use real_dep::thing;\n");
    fx.write("crates/demo/tests/t.rs", "use test_dep::helper;\n");
    let report = fx.audit_rule(RuleKind::Dep);
    assert_eq!(count(&report, RuleKind::Dep), 0, "{:?}", report.findings);
}

#[test]
fn dep_rule_separates_workspace_root_from_members() {
    let fx = Fixture::new("dep-root");
    // Root declares a dep only the member uses: must still be flagged at
    // the root, because member sources don't belong to the root package.
    fx.write(
        "Cargo.toml",
        "[workspace]\nmembers = [\"crates/demo\"]\n\n[dependencies]\nmember-only = \"1\"\n",
    );
    fx.write("src/lib.rs", "pub fn root() {}\n");
    fx.write(
        "crates/demo/Cargo.toml",
        "[package]\nname = \"demo\"\n\n[dependencies]\nmember-only = \"1\"\n",
    );
    fx.write("crates/demo/src/lib.rs", "pub use member_only::x;\n");
    let report = fx.audit_rule(RuleKind::Dep);
    assert_eq!(count(&report, RuleKind::Dep), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].file, "Cargo.toml");
}

#[test]
fn determinism_rule_flags_hash_iteration_and_pragma_suppresses() {
    let fx = Fixture::new("det-hash");
    fx.write(
        "crates/demo/src/lib.rs",
        "use std::collections::HashMap;\npub fn f(m: HashMap<u64, u64>) -> u64 {\n    m.values().sum()\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Determinism);
    assert_eq!(
        count(&report, RuleKind::Determinism),
        1,
        "{:?}",
        report.findings
    );

    // Sorted containers pass...
    fx.write(
        "crates/demo/src/lib.rs",
        "use std::collections::BTreeMap;\npub fn f(m: BTreeMap<u64, u64>) -> u64 {\n    m.values().sum()\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Determinism);
    assert_eq!(
        count(&report, RuleKind::Determinism),
        0,
        "{:?}",
        report.findings
    );

    // ...and so does a reasoned pragma.
    fx.write(
        "crates/demo/src/lib.rs",
        "use std::collections::HashMap;\npub fn f(m: HashMap<u64, u64>) -> u64 {\n    // audit: allow(determinism, the sum is commutative so order cannot reach output)\n    m.values().sum()\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Determinism);
    assert_eq!(
        count(&report, RuleKind::Determinism),
        0,
        "{:?}",
        report.findings
    );
    assert_eq!(report.pragmas_honoured, 1);
}

#[test]
fn determinism_rule_flags_clock_and_underived_seeds() {
    let fx = Fixture::new("det-clock");
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn stamp() -> u64 {\n    let t = std::time::SystemTime::now();\n    let i = std::time::Instant::now();\n    let rng = StdRng::seed_from_u64(12345);\n    0\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Determinism);
    assert_eq!(
        count(&report, RuleKind::Determinism),
        3,
        "{:?}",
        report.findings
    );

    // Seeds threaded through the derivation chain are fine.
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn planned(shard_seed: u64) -> StdRng {\n    StdRng::seed_from_u64(derive_seed(shard_seed, 1, 0))\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Determinism);
    assert_eq!(
        count(&report, RuleKind::Determinism),
        0,
        "{:?}",
        report.findings
    );
}

#[test]
fn determinism_rule_flags_float_accumulation_only_in_merge_paths() {
    let fx = Fixture::new("det-float");
    // A fold path accumulating floats fires...
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn merge_latency(xs: &[f64]) -> f64 {\n    let mut total: f64 = 0.0;\n    for x in xs {\n        total += x;\n    }\n    total\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Determinism);
    assert_eq!(
        count(&report, RuleKind::Determinism),
        1,
        "{:?}",
        report.findings
    );

    // ...the same body under a non-merge name does not...
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn scaled_latency(xs: &[f64]) -> f64 {\n    let mut total: f64 = 0.0;\n    for x in xs {\n        total += x;\n    }\n    total\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Determinism);
    assert_eq!(
        count(&report, RuleKind::Determinism),
        0,
        "{:?}",
        report.findings
    );

    // ...and integer accumulation in a merge path is order-free.
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn merge_counts(xs: &[u64]) -> u64 {\n    let mut total: u64 = 0;\n    for x in xs {\n        total += x;\n    }\n    total\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Determinism);
    assert_eq!(
        count(&report, RuleKind::Determinism),
        0,
        "{:?}",
        report.findings
    );
}

#[test]
fn determinism_rule_flags_keyed_unstable_sorts() {
    let fx = Fixture::new("det-sort");
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn order(v: &mut Vec<(u64, u64)>) {\n    v.sort_unstable_by_key(|e| e.1);\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Determinism);
    assert_eq!(
        count(&report, RuleKind::Determinism),
        1,
        "{:?}",
        report.findings
    );

    // Sorting the full value is a total order: allowed.
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn order(v: &mut Vec<(u64, u64)>) {\n    v.sort_unstable();\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Determinism);
    assert_eq!(
        count(&report, RuleKind::Determinism),
        0,
        "{:?}",
        report.findings
    );
}

#[test]
fn determinism_rule_exempts_bench_xtask_and_tests() {
    let fx = Fixture::new("det-scope");
    let offending = "pub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    fx.write("crates/bench/src/lib.rs", offending);
    fx.write("crates/xtask/src/lib.rs", offending);
    fx.write("crates/demo/tests/t.rs", offending);
    fx.write(
        "crates/demo/src/lib.rs",
        "#[cfg(test)]\nmod tests {\n    pub fn f() { let t = std::time::Instant::now(); }\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Determinism);
    assert_eq!(
        count(&report, RuleKind::Determinism),
        0,
        "{:?}",
        report.findings
    );
}

#[test]
fn malformed_pragmas_are_findings() {
    let fx = Fixture::new("pragma");
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn f(x: Option<u8>) -> u8 {\n    // audit: allow(panic)\n    x.unwrap()\n}\n",
    );
    let report = fx.audit();
    assert_eq!(count(&report, RuleKind::Pragma), 1, "{:?}", report.findings);
    // The reasonless pragma does NOT waive the panic finding.
    assert_eq!(count(&report, RuleKind::Panic), 1, "{:?}", report.findings);
}

#[test]
fn clean_tree_audits_clean() {
    let fx = Fixture::new("clean");
    fx.write(
        "crates/demo/Cargo.toml",
        "[package]\nname = \"demo\"\n\n[dependencies]\nother = \"1\"\n",
    );
    fx.write(
        "crates/demo/src/lib.rs",
        "pub use other::thing;\n\npub fn f(count: u64) -> f64 {\n    count as f64\n}\n",
    );
    let report = fx.audit();
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.rust_files, 1);
    assert_eq!(report.manifests, 1);
}

#[test]
fn unsafe_rule_fires_and_pragma_suppresses() {
    let fx = Fixture::new("unsafe");
    fx.write("crates/demo/Cargo.toml", "[package]\nname = \"demo\"\n");
    // Escape outside the quarantine.
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    // Undocumented block inside the quarantine.
    fx.write(
        "crates/demo/src/simd/mod.rs",
        "pub fn g(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Unsafe);
    assert_eq!(count(&report, RuleKind::Unsafe), 2, "{:?}", report.findings);

    // A SAFETY comment cures the quarantined block; the escape needs the
    // pragma (and then still documents why the unsafety is sound).
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn f(p: *const u8) -> u8 {\n    // audit: allow(unsafe, fixture exercising the escape hatch)\n    unsafe { *p }\n}\n",
    );
    fx.write(
        "crates/demo/src/simd/mod.rs",
        "pub fn g(p: *const u8) -> u8 {\n    // SAFETY: caller passes a valid pointer in this fixture.\n    unsafe { *p }\n}\n",
    );
    let report = fx.audit_rule(RuleKind::Unsafe);
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.pragmas_honoured, 1);
}

#[test]
fn shipped_tree_audits_clean() {
    // The acceptance bar for the PR itself: the real workspace, as checked
    // in, has zero findings. CARGO_MANIFEST_DIR is crates/xtask.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = run_audit(root, &[]).expect("audit runs");
    assert!(
        report.is_clean(),
        "shipped tree has audit findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.rust_files > 50, "workspace scan looks truncated");
    assert!(report.pragmas_honoured > 10, "pragma accounting broken");
}
