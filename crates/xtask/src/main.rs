//! CLI entry point: `cargo run -p xtask -- audit [--root PATH] [--rule R]…`.
//!
//! Exit status: 0 when the tree is clean, 1 when findings survive, 2 on
//! usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::pragma::RuleKind;

const USAGE: &str = "\
usage: cargo run -p xtask -- audit [--root PATH] [--rule RULE]... [--json]

Static-analysis audit of the workspace. Rules:
  cast         units discipline (raw `as` casts / mixed-unit arithmetic)
  panic        panic-free library code
  citation     paper traceability of public model items
  dep          manifest hygiene (declared deps must be imported)
  determinism  schedule-independence (hash-order iteration, clock/entropy
               reads, float accumulation in merge paths, unstable sorts)
  unsafe       quarantine discipline (`unsafe` only in simd/hw submodules,
               every unsafe block documented with `// SAFETY:`)

Options:
  --root PATH   workspace root to audit (default: current directory)
  --rule RULE   run only the named rule (repeatable)
  --json        emit a machine-readable JSON report on stdout
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let Some(command) = iter.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    if command != "audit" {
        eprintln!("unknown command `{command}`\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut root = PathBuf::from(".");
    let mut rules: Vec<RuleKind> = Vec::new();
    let mut json = false;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match iter.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--rule" => match iter.next().map(|r| (r, RuleKind::parse(r))) {
                Some((_, Some(rule))) => rules.push(rule),
                Some((r, None)) => {
                    eprintln!("unknown rule `{r}`\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--rule requires a rule name\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown option `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match xtask::run_audit(&root, &rules) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!(
            "audit: {} file(s), {} manifest(s), {} pragma(s) honoured — {} finding(s)",
            report.rust_files,
            report.manifests,
            report.pragmas_honoured,
            report.findings.len(),
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
