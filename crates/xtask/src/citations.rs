//! Rule `citation`: paper traceability for the model core.
//!
//! Every public item in the files that transcribe the paper's math
//! (`core/src/model.rs`, `core/src/study.rs`, `core/src/paper.rs`) must say
//! *which* equation, figure, table, or section it implements, in its doc
//! comment: `Eq. 1`, `Figure 9`, `Table 8`, `Section 4`, etc. Anchoring
//! each item to the paper is what lets a reader check the transcription
//! against the source — an uncited public item is unauditable.
//!
//! A deliberate exception (e.g. a pure plumbing helper) is whitelisted with
//! `// audit: allow(citation, <reason>)` next to the item or in its docs.

use crate::lexer::Line;

/// Item keywords that constitute citable public API.
const ITEM_KEYWORDS: &[&str] = &["fn", "struct", "enum", "trait", "type", "const", "static"];

/// Markers accepted as a paper citation when followed by a number nearby.
const CITE_MARKERS: &[&str] = &[
    "Eq.", "Eqs.", "Equation", "Fig.", "Figs.", "Figure", "Table", "Section", "§",
];

/// A raw finding: `(line, message)`, plus the set of doc lines belonging to
/// the item so pragma lookup can cover the whole doc block.
pub struct CitationFinding {
    pub line: usize,
    pub doc_lines: Vec<usize>,
    pub message: String,
}

/// Scans one model file for public items missing a paper citation.
pub fn check(lines: &[Line]) -> Vec<CitationFinding> {
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(item) = public_item(&line.code) else {
            continue;
        };
        // Collect the doc block: contiguous comment-only and attribute-only
        // lines directly above the item.
        let mut doc = String::new();
        let mut doc_lines = vec![line.number];
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let above = &lines[j];
            let code = above.code.trim();
            let is_attr = code.starts_with("#[") || code.starts_with("#!");
            let is_comment_only =
                code.is_empty() && !(above.comment.is_empty() && above.doc.is_empty());
            if is_attr || is_comment_only {
                doc.push_str(&above.doc);
                doc.push_str(&above.comment);
                doc.push('\n');
                doc_lines.push(above.number);
            } else {
                break;
            }
        }
        doc.push_str(&line.doc);
        doc.push_str(&line.comment);

        if !has_citation(&doc) {
            findings.push(CitationFinding {
                line: line.number,
                doc_lines,
                message: format!(
                    "public {item} has no paper citation in its docs; cite the equation/figure \
                     it implements (e.g. `Eq. 1`, `Figure 9`, `Table 8`) or whitelist with \
                     `// audit: allow(citation, <reason>)`"
                ),
            });
        }
    }
    findings
}

/// Returns `Some("fn name")`-style description if the line declares a
/// public item; `pub(crate)`/`pub(super)` and `pub use`/`pub mod` are not
/// part of the citable surface.
fn public_item(code: &str) -> Option<String> {
    let toks = crate::lexer::tokens(code);
    let mut i = 0;
    if toks.first().map(String::as_str) != Some("pub") {
        return None;
    }
    i += 1;
    if toks.get(i).map(String::as_str) == Some("(") {
        return None; // pub(crate) / pub(super): not public API
    }
    // Skip qualifiers that may precede the item keyword.
    while matches!(
        toks.get(i).map(String::as_str),
        Some("unsafe" | "async" | "extern")
    ) {
        i += 1;
    }
    let kw = toks.get(i)?;
    if !ITEM_KEYWORDS.contains(&kw.as_str()) {
        return None;
    }
    let name = toks.get(i + 1).cloned().unwrap_or_default();
    Some(format!("{kw} `{name}`"))
}

/// True when the doc text cites the paper: a marker followed by a digit
/// within a few characters (`Eq. 1`, `Figure 9b`, `Table 8`).
fn has_citation(doc: &str) -> bool {
    for marker in CITE_MARKERS {
        let mut rest = doc;
        while let Some(pos) = rest.find(marker) {
            let tail = &rest[pos + marker.len()..];
            if tail.chars().take(3).any(|c| c.is_ascii_digit()) {
                return true;
            }
            rest = tail;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn run(src: &str) -> Vec<CitationFinding> {
        check(&scan(src))
    }

    #[test]
    fn uncited_public_fn_is_flagged() {
        let f = run("/// Computes things.\npub fn speedup() -> f64 { 1.0 }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("fn `speedup`"));
    }

    #[test]
    fn cited_public_fn_passes() {
        assert!(run("/// End-to-end time, Eq. 1 of the paper.\npub fn e2e() {}\n").is_empty());
        assert!(run("/// See Figure 9 sweep.\npub struct Sweep;\n").is_empty());
        assert!(run("/// Table 8 calibration row.\npub const ROW: u8 = 0;\n").is_empty());
    }

    #[test]
    fn marker_without_number_does_not_count() {
        let f = run("/// This figure of speech cites no Figure at all.\npub fn f() {}\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn multi_line_docs_and_attrs_are_searched() {
        let src = "/// Sweep over offload fractions.\n///\n/// Reproduces Figure 10.\n#[derive(Debug)]\npub struct G;\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn private_and_crate_items_are_ignored() {
        assert!(run("fn helper() {}\npub(crate) fn plumbing() {}\n").is_empty());
    }

    #[test]
    fn pub_use_and_mod_are_ignored() {
        assert!(run("pub use crate::x::Y;\npub mod z;\n").is_empty());
    }

    #[test]
    fn doc_lines_cover_the_block() {
        let f = run("/// No cite.\n/// Still none.\npub fn g() {}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].doc_lines.contains(&1));
        assert!(f[0].doc_lines.contains(&2));
        assert!(f[0].doc_lines.contains(&3));
    }
}
