//! Rule `cast`: units discipline outside `core/src/units.rs`.
//!
//! The model's physical quantities (seconds, bytes, cycles) are supposed to
//! live behind the `hsdp_core::units` newtypes, where constructors check
//! ranges and conversions are explicit. This rule flags the two ways raw
//! numerics leak back in:
//!
//! 1. An `as` cast applied to a unit-named binding or unit accessor
//!    (`total_secs as u32`, `d.as_nanos() as f64`): `as` silently truncates
//!    and saturates, which is exactly the class of bug the newtypes exist
//!    to prevent.
//! 2. `+`/`-` between bindings of *different* unit families
//!    (`bytes + secs`): dimensionally meaningless arithmetic.
//!
//! Whitelist a deliberate site with `// audit: allow(cast, <reason>)`.

use crate::lexer::{self, Line};

/// Unit families recognised by the rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitFamily {
    Time,
    Bytes,
    Cycles,
}

const TIME_WORDS: &[&str] = &[
    "sec",
    "secs",
    "second",
    "seconds",
    "nanos",
    "nanosecond",
    "nanoseconds",
    "micros",
    "millis",
];
const BYTE_WORDS: &[&str] = &["byte", "bytes"];
const CYCLE_WORDS: &[&str] = &["cycle", "cycles"];

/// Identifiers that *mention* bytes but denote byte-order conversions,
/// not byte-count quantities.
const NON_QUANTITY_IDENTS: &[&str] = &[
    "from_le_bytes",
    "from_be_bytes",
    "from_ne_bytes",
    "to_le_bytes",
    "to_be_bytes",
    "to_ne_bytes",
];

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Classifies a snake_case identifier by its unit-bearing name parts.
pub fn unit_family(ident: &str) -> Option<UnitFamily> {
    // Only lower-case identifiers are bindings/methods; type names like
    // `Seconds` are the sanctioned newtypes themselves.
    if ident.chars().next().is_some_and(|c| c.is_uppercase()) {
        return None;
    }
    if NON_QUANTITY_IDENTS.contains(&ident) {
        return None;
    }
    for part in ident.split('_') {
        if TIME_WORDS.contains(&part) {
            return Some(UnitFamily::Time);
        }
        if BYTE_WORDS.contains(&part) {
            return Some(UnitFamily::Bytes);
        }
        if CYCLE_WORDS.contains(&part) {
            return Some(UnitFamily::Cycles);
        }
    }
    None
}

/// A raw finding produced by this rule: `(line, message)`.
pub type CastFinding = (usize, String);

/// Scans one file's lines for units-discipline violations.
pub fn check(lines: &[Line]) -> Vec<CastFinding> {
    let mut findings = Vec::new();
    for line in lines {
        if line.in_test || line.is_code_blank() {
            continue;
        }
        let toks = lexer::tokens(&line.code);
        for i in 0..toks.len() {
            if toks[i] == "as"
                && toks
                    .get(i + 1)
                    .is_some_and(|t| NUMERIC_TYPES.contains(&t.as_str()))
            {
                if let Some(source) = cast_subject(&toks, i) {
                    if let Some(fam) = unit_family(&source) {
                        findings.push((
                            line.number,
                            format!(
                                "`{source} as {}` casts a {}-unit quantity through raw `as`; \
                                 use the units newtypes (core/src/units.rs) or whitelist with \
                                 `// audit: allow(cast, <reason>)`",
                                toks[i + 1],
                                family_name(fam),
                            ),
                        ));
                    }
                }
            }
            // Cross-family `+`/`-` between unit-named bindings.
            if (toks[i] == "+" || toks[i] == "-") && i > 0 {
                let lhs = &toks[i - 1];
                let rhs = match toks.get(i + 1) {
                    Some(t) => t,
                    None => continue,
                };
                if let (Some(fa), Some(fb)) = (unit_family(lhs), unit_family(rhs)) {
                    if fa != fb {
                        findings.push((
                            line.number,
                            format!(
                                "`{lhs} {} {rhs}` mixes {} and {} units in raw arithmetic; \
                                 convert through the units newtypes first",
                                toks[i],
                                family_name(fa),
                                family_name(fb),
                            ),
                        ));
                    }
                }
            }
        }
    }
    findings
}

/// Finds the identifier whose value is being cast: either the identifier
/// directly before `as`, or — for `expr.method() as T` — the method name
/// before the call's opening paren.
fn cast_subject(toks: &[String], as_idx: usize) -> Option<String> {
    if as_idx == 0 {
        return None;
    }
    let prev = &toks[as_idx - 1];
    if prev == ")" {
        // Walk back over the balanced call arguments to the callee.
        let mut depth = 0usize;
        let mut j = as_idx - 1;
        loop {
            match toks[j].as_str() {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        let callee = &toks[j - 1];
        if callee
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            return Some(callee.clone());
        }
        None
    } else if prev
        .chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
    {
        Some(prev.clone())
    } else {
        None
    }
}

fn family_name(f: UnitFamily) -> &'static str {
    match f {
        UnitFamily::Time => "time",
        UnitFamily::Bytes => "byte",
        UnitFamily::Cycles => "cycle",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn run(src: &str) -> Vec<CastFinding> {
        check(&scan(src))
    }

    #[test]
    fn flags_unit_binding_cast() {
        let f = run("let x = total_secs as u32;");
        assert_eq!(f.len(), 1);
        assert!(f[0].1.contains("total_secs as u32"));
    }

    #[test]
    fn flags_unit_accessor_cast() {
        let f = run("let x = d.as_nanos() as f64;");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].1.contains("as_nanos"));
    }

    #[test]
    fn flags_cross_family_addition() {
        let f = run("let x = total_bytes + total_secs;");
        assert_eq!(f.len(), 1);
        let f = run("let y = cycles - bytes_moved;");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn same_family_arithmetic_is_fine() {
        assert!(run("let x = read_bytes + written_bytes;").is_empty());
    }

    #[test]
    fn non_unit_casts_are_fine() {
        assert!(run("let x = count as f64; let y = idx as usize;").is_empty());
        assert!(run("let n = blob.len() as u64;").is_empty());
    }

    #[test]
    fn newtype_names_are_exempt() {
        assert!(run("let s: Seconds = Seconds::new(1.0);").is_empty());
    }

    #[test]
    fn byte_order_conversions_are_exempt() {
        assert!(run("let n = u32::from_le_bytes(b) as usize;").is_empty());
        assert!(run("let b = x.to_be_bytes() as u64;").is_empty());
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "#[cfg(test)]\nmod t {\n fn f() { let x = total_secs as u32; }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn chained_call_subject_found() {
        let f = run("let x = bw.as_bytes_per_sec(width) as u64;");
        assert_eq!(f.len(), 1);
    }
}
