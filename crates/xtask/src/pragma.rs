//! The `audit: allow(...)` pragma — the single escape hatch for every rule.
//!
//! Grammar (inside any comment, `//` in Rust or `#` in Cargo.toml):
//!
//! ```text
//! audit: allow(<rule>, <reason>)
//! ```
//!
//! `<rule>` is one of `cast`, `panic`, `citation`, `dep`, `determinism`,
//! `unsafe`; `<reason>` is a
//! free-form, non-empty justification. A pragma suppresses findings of that
//! rule on its own line, or — when it sits on a comment-only line — on the
//! next line that carries code. A pragma with a missing or empty reason is
//! itself a finding: silent waivers are not allowed.

use std::fmt;

/// The rule classes the auditor enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// Raw numeric arithmetic / lossy `as` casts on unit-named quantities.
    Cast,
    /// `unwrap`/`expect`/`panic!`-family calls in library code.
    Panic,
    /// Public paper-model items lacking an equation/figure citation.
    Citation,
    /// Declared manifest dependencies never imported by the crate.
    Dep,
    /// Schedule-dependent constructs: hash-order iteration, ambient
    /// entropy/clock reads, float accumulation in merge paths, tied
    /// unstable sorts.
    Determinism,
    /// `unsafe` code outside the `simd`/`hw` quarantine submodules, or an
    /// `unsafe` block inside them lacking a `// SAFETY:` comment.
    Unsafe,
    /// A malformed `audit: allow` pragma (bad rule name or empty reason).
    Pragma,
}

impl RuleKind {
    /// The name used in pragmas and `--rule` filters.
    pub fn name(self) -> &'static str {
        match self {
            RuleKind::Cast => "cast",
            RuleKind::Panic => "panic",
            RuleKind::Citation => "citation",
            RuleKind::Dep => "dep",
            RuleKind::Determinism => "determinism",
            RuleKind::Unsafe => "unsafe",
            RuleKind::Pragma => "pragma",
        }
    }

    /// Parses a `--rule` filter / pragma rule name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cast" => Some(RuleKind::Cast),
            "panic" => Some(RuleKind::Panic),
            "citation" => Some(RuleKind::Citation),
            "dep" => Some(RuleKind::Dep),
            "determinism" => Some(RuleKind::Determinism),
            "unsafe" => Some(RuleKind::Unsafe),
            "pragma" => Some(RuleKind::Pragma),
            _ => None,
        }
    }
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A successfully parsed pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    pub rule: RuleKind,
    pub reason: String,
}

/// Outcome of scanning one comment for pragmas.
#[derive(Debug, Clone, Default)]
pub struct PragmaScan {
    /// Well-formed pragmas found in the comment.
    pub pragmas: Vec<Pragma>,
    /// Human-readable descriptions of malformed pragma attempts.
    pub malformed: Vec<String>,
}

/// Extracts every `audit: allow(...)` occurrence from a comment string.
pub fn scan_comment(comment: &str) -> PragmaScan {
    let mut out = PragmaScan::default();
    let mut rest = comment;
    while let Some(pos) = rest.find("audit:") {
        rest = &rest[pos + "audit:".len()..];
        let body = rest.trim_start();
        let Some(tail) = body.strip_prefix("allow") else {
            out.malformed
                .push("expected `allow(...)` after `audit:`".to_owned());
            continue;
        };
        let tail = tail.trim_start();
        let Some(tail) = tail.strip_prefix('(') else {
            out.malformed
                .push("expected `(` after `audit: allow`".to_owned());
            continue;
        };
        let Some(close) = tail.find(')') else {
            out.malformed
                .push("unterminated `audit: allow(` pragma".to_owned());
            break;
        };
        let inner = &tail[..close];
        let (rule_str, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        match RuleKind::parse(rule_str) {
            Some(RuleKind::Pragma) | None => {
                out.malformed.push(format!(
                    "unknown audit rule `{rule_str}` (expected cast, panic, citation, dep, \
                     determinism, or unsafe)"
                ));
            }
            Some(rule) => {
                if reason.is_empty() {
                    out.malformed.push(format!(
                        "pragma `allow({rule_str})` is missing a reason — write `allow({rule_str}, <why>)`"
                    ));
                } else {
                    out.pragmas.push(Pragma {
                        rule,
                        reason: reason.to_owned(),
                    });
                }
            }
        }
    }
    out
}

/// Per-file pragma index: which rules are waived on which lines.
#[derive(Debug, Default)]
pub struct PragmaIndex {
    /// (line, rule) pairs where findings are suppressed.
    allowed: Vec<(usize, RuleKind)>,
    /// Malformed pragma findings: (line, description).
    pub malformed: Vec<(usize, String)>,
}

impl PragmaIndex {
    /// Builds the index from scanned lines. `lines` pairs each line number
    /// with its comment text and whether the line carries code; a pragma on
    /// a comment-only line covers the next code-bearing line (so it can sit
    /// above the statement it waives).
    pub fn build(lines: &[(usize, String, bool)]) -> Self {
        let mut idx = PragmaIndex::default();
        let mut carry: Vec<RuleKind> = Vec::new();
        for (number, comment, has_code) in lines {
            let scan = scan_comment(comment);
            for m in scan.malformed {
                idx.malformed.push((*number, m));
            }
            let rules: Vec<RuleKind> = scan.pragmas.iter().map(|p| p.rule).collect();
            if *has_code {
                for r in rules.iter().chain(carry.iter()) {
                    idx.allowed.push((*number, *r));
                }
                carry.clear();
            } else {
                carry.extend(rules);
            }
        }
        // Pragmas trailing at EOF with no code after them: attach in place
        // so they are at least not reported as unused code errors.
        idx
    }

    /// True when `rule` findings are waived on `line`.
    pub fn allows(&self, line: usize, rule: RuleKind) -> bool {
        self.allowed.iter().any(|&(l, r)| l == line && r == rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_pragma() {
        let s = scan_comment(" audit: allow(cast, lossless u32 widening for display)");
        assert_eq!(s.pragmas.len(), 1);
        assert_eq!(s.pragmas[0].rule, RuleKind::Cast);
        assert!(s.pragmas[0].reason.contains("widening"));
        assert!(s.malformed.is_empty());
    }

    #[test]
    fn missing_reason_is_malformed() {
        let s = scan_comment("audit: allow(panic)");
        assert!(s.pragmas.is_empty());
        assert_eq!(s.malformed.len(), 1);
        let s = scan_comment("audit: allow(panic, )");
        assert!(s.pragmas.is_empty());
        assert_eq!(s.malformed.len(), 1);
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let s = scan_comment("audit: allow(everything, because)");
        assert!(s.pragmas.is_empty());
        assert_eq!(s.malformed.len(), 1);
    }

    #[test]
    fn standalone_comment_covers_next_code_line() {
        let lines = vec![
            (
                1,
                " audit: allow(panic, startup invariant)".to_owned(),
                false,
            ),
            (2, String::new(), true),
        ];
        let idx = PragmaIndex::build(&lines);
        assert!(idx.allows(2, RuleKind::Panic));
        assert!(!idx.allows(2, RuleKind::Cast));
        assert!(!idx.allows(1, RuleKind::Panic));
    }

    #[test]
    fn trailing_comment_covers_own_line() {
        let lines = vec![(7, " audit: allow(cast, fine)".to_owned(), true)];
        let idx = PragmaIndex::build(&lines);
        assert!(idx.allows(7, RuleKind::Cast));
    }

    #[test]
    fn multiple_pragmas_in_one_comment() {
        let s = scan_comment("audit: allow(cast, a) audit: allow(panic, b)");
        assert_eq!(s.pragmas.len(), 2);
    }
}
