//! Rule `panic`: panic-free library code.
//!
//! Simulation libraries are consumed by sweeps that iterate thousands of
//! configurations; a stray `unwrap()` turns an out-of-range input into a
//! process abort instead of a diagnosable error. In library sources
//! (anything under a crate's `src/` except binary entry points), the
//! panicking family — `.unwrap()`, `.expect(..)`, `panic!`, `unreachable!`,
//! `todo!`, `unimplemented!` — is forbidden outside `#[cfg(test)]` regions.
//!
//! A genuinely unreachable arm or a checked startup invariant can be
//! whitelisted with `// audit: allow(panic, <reason>)`.

use crate::lexer::{self, Line};

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// A raw finding: `(line, message)`.
pub type PanicFinding = (usize, String);

/// Scans one library file's lines for panicking constructs.
pub fn check(lines: &[Line]) -> Vec<PanicFinding> {
    let mut findings = Vec::new();
    for line in lines {
        if line.in_test || line.is_code_blank() {
            continue;
        }
        let toks = lexer::tokens(&line.code);
        for i in 0..toks.len() {
            let t = toks[i].as_str();
            if PANIC_METHODS.contains(&t)
                && i > 0
                && toks[i - 1] == "."
                && toks.get(i + 1).is_some_and(|n| n == "(")
            {
                findings.push((
                    line.number,
                    format!(
                        "`.{t}()` can abort the process from library code; return a Result/Option \
                         or whitelist with `// audit: allow(panic, <reason>)`"
                    ),
                ));
            }
            if PANIC_MACROS.contains(&t) && toks.get(i + 1).is_some_and(|n| n == "!") {
                // `debug_assert!`/`assert!` are allowed; they tokenize as
                // their own identifiers so no exclusion is needed here.
                findings.push((
                    line.number,
                    format!(
                        "`{t}!` aborts the process from library code; return an error or \
                         whitelist with `// audit: allow(panic, <reason>)`"
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn run(src: &str) -> Vec<PanicFinding> {
        check(&scan(src))
    }

    #[test]
    fn flags_unwrap_and_expect() {
        assert_eq!(run("let x = opt.unwrap();").len(), 1);
        let msg = "oops";
        let _ = msg;
        assert_eq!(run("let x = res.expect( msg );").len(), 1);
    }

    #[test]
    fn flags_panic_macros() {
        assert_eq!(run("panic!( );").len(), 1);
        assert_eq!(run("if bad { unreachable!() }").len(), 1);
        assert_eq!(run("todo!()").len(), 1);
        assert_eq!(run("unimplemented!()").len(), 1);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(run("let x = opt.unwrap_or(0);").is_empty());
        assert!(run("let x = opt.unwrap_or_else(Default::default);").is_empty());
        assert!(run("let x = opt.unwrap_or_default();").is_empty());
    }

    #[test]
    fn asserts_are_fine() {
        assert!(run("assert!(x > 0); debug_assert!(y.is_finite());").is_empty());
        assert!(run("debug_assert_eq!(a, b);").is_empty());
    }

    #[test]
    fn test_regions_are_skipped() {
        let src = "#[cfg(test)]\nmod t {\n fn f() { x.unwrap(); panic!( ); }\n}\nfn lib() { }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        assert!(run(r#"let s = "never .unwrap() this"; // or panic!"#).is_empty());
    }

    #[test]
    fn bare_field_named_expect_is_fine() {
        assert!(run("let e = cfg.expect; let u = unwrap;").is_empty());
    }
}
