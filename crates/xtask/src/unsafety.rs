//! Rule `unsafe`: the SIMD-quarantine discipline (kernel round 3).
//!
//! The workspace denies `unsafe_code` at every crate root; only designated
//! quarantine submodules — any path segment or file stem named `simd` or
//! `hw` — opt back in, because runtime-dispatched vector/hardware kernels
//! genuinely need raw loads and `target_feature` calls. This rule makes the
//! quarantine machine-checked rather than conventional:
//!
//! - **escape** — an `unsafe` token in a non-quarantined source file is a
//!   finding, even where the compiler would accept it (e.g. a future
//!   `allow` slipped into a crate root).
//! - **undocumented** — every `unsafe { … }` block inside a quarantine
//!   file must carry a `// SAFETY:` comment on the same line or on the
//!   contiguous comment lines directly above it, stating why the
//!   preconditions hold.
//!
//! A deliberate exception carries `// audit: allow(unsafe, <reason>)`.

use crate::lexer::{self, Line};

/// A raw finding: `(line, message)`.
pub type UnsafeFinding = (usize, String);

/// True when `rel` (a `/`-separated workspace-relative path) is inside the
/// unsafe quarantine: some path segment or file stem is `simd` or `hw`.
pub fn in_quarantine(rel: &str) -> bool {
    rel.split('/')
        .map(|seg| seg.strip_suffix(".rs").unwrap_or(seg))
        .any(|seg| seg == "simd" || seg == "hw")
}

/// Scans one source file's lines for quarantine violations.
pub fn check(rel: &str, lines: &[Line]) -> Vec<UnsafeFinding> {
    let quarantined = in_quarantine(rel);
    let mut findings = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let toks = lexer::tokens(&line.code);
        let Some(pos) = toks.iter().position(|t| t == "unsafe") else {
            continue;
        };
        if !quarantined {
            findings.push((
                line.number,
                "`unsafe` outside the quarantine — move this code into a `simd`/`hw` \
                 submodule (the only places unsafe fast paths may live)"
                    .to_owned(),
            ));
            continue;
        }
        // Inside the quarantine only `unsafe { … }` blocks are policed (the
        // same scope as clippy's `undocumented_unsafe_blocks`): each needs a
        // `// SAFETY:` justification.
        if !is_block(&toks, pos, lines, i) {
            continue;
        }
        if !has_safety_comment(lines, i) {
            findings.push((
                line.number,
                "`unsafe` block without a `// SAFETY:` comment — state why the \
                 preconditions hold on the line above the block"
                    .to_owned(),
            ));
        }
    }
    findings
}

/// True when the `unsafe` token at `toks[pos]` opens a block (next code
/// token is `{`), looking across line boundaries when `unsafe` ends a line.
fn is_block(toks: &[String], pos: usize, lines: &[Line], line_idx: usize) -> bool {
    if let Some(next) = toks.get(pos + 1) {
        return next == "{";
    }
    lines[line_idx + 1..]
        .iter()
        .find(|l| !l.is_code_blank())
        .and_then(|l| lexer::tokens(&l.code).first().cloned())
        .is_some_and(|t| t == "{")
}

/// True when the line at `idx`, or the contiguous comment-only lines just
/// above it, carry a `SAFETY:` comment.
fn has_safety_comment(lines: &[Line], idx: usize) -> bool {
    if lines[idx].comment.contains("SAFETY:") {
        return true;
    }
    lines[..idx]
        .iter()
        .rev()
        .take_while(|l| l.is_code_blank())
        .any(|l| l.comment.contains("SAFETY:"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<UnsafeFinding> {
        check(rel, &lexer::scan(src))
    }

    #[test]
    fn quarantine_paths() {
        assert!(in_quarantine("crates/taxes/src/simd/compress.rs"));
        assert!(in_quarantine("crates/taxes/src/simd/mod.rs"));
        assert!(in_quarantine("crates/platforms/src/simd.rs"));
        assert!(in_quarantine("crates/x/src/hw/crc.rs"));
        assert!(!in_quarantine("crates/taxes/src/compress.rs"));
        assert!(!in_quarantine("crates/platforms/src/bloom.rs"));
        // Only whole segments count, not substrings.
        assert!(!in_quarantine("crates/x/src/simdish.rs"));
    }

    #[test]
    fn unsafe_outside_quarantine_is_flagged() {
        let f = run(
            "crates/taxes/src/compress.rs",
            "fn f() {\n    let x = unsafe { load(p) };\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].0, 2);
        assert!(f[0].1.contains("quarantine"));
    }

    #[test]
    fn documented_block_in_quarantine_is_clean() {
        let f = run(
            "crates/taxes/src/simd/crc.rs",
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is readable.\n    unsafe { *p }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn undocumented_block_in_quarantine_is_flagged() {
        let f = run(
            "crates/taxes/src/simd/crc.rs",
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].1.contains("SAFETY"));
    }

    #[test]
    fn same_line_safety_comment_counts() {
        let f = run(
            "crates/x/src/simd.rs",
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: p valid per contract\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn multi_line_safety_comment_counts() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: the resolver installed this entry\n    // only after feature detection succeeded.\n    unsafe { *p }\n}\n";
        assert!(run("crates/x/src/simd.rs", src).is_empty());
    }

    #[test]
    fn unsafe_fn_signatures_are_not_policed_in_quarantine() {
        // Declarations/impls are covered by doc `# Safety` sections and the
        // compiler; only blocks (call sites) need inline justification.
        let src = "unsafe fn load(p: *const u8) -> u8 {\n    *p\n}\n";
        assert!(run("crates/x/src/simd/mem.rs", src).is_empty());
        // But the same signature outside the quarantine is still an escape.
        assert_eq!(run("crates/x/src/mem.rs", src).len(), 1);
    }

    #[test]
    fn block_brace_on_next_line_is_still_a_block() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe\n    { *p }\n}\n";
        let f = run("crates/x/src/simd.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].1.contains("SAFETY"));
    }

    #[test]
    fn strings_and_comments_do_not_trip_the_rule() {
        let src = "fn f() {\n    let s = \"unsafe { }\"; // unsafe in prose\n}\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
        // Lint-level attributes mention `unsafe_code`, not the keyword.
        assert!(run("crates/x/src/lib.rs", "#![deny(unsafe_code)]\n").is_empty());
    }
}
