//! A lightweight intra-file symbol/flow pass over the lexer output.
//!
//! The determinism rules need more context than a single line can give:
//! whether an identifier names a std hash container, whether a function is
//! (or is called from) a merge/fold path, and which locals carry floats.
//! This pass recovers exactly that much structure — function extents, an
//! intra-file call graph, and per-scope typed-identifier sets — from the
//! token stream, without building a full AST. It is deliberately
//! heuristic: it only has to be right about the patterns this codebase
//! (and the fixture corpus) actually writes, and anything it misses is
//! caught dynamically by the schedule-perturbation checker.

use std::collections::BTreeSet;

use crate::lexer::{self, Line};

/// Keywords that would otherwise look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "mut", "pub", "use", "impl",
    "struct", "enum", "trait", "mod", "move", "as", "in", "where", "ref", "else", "break",
    "continue", "type", "const", "static", "crate", "super", "dyn",
];

/// One function found in the file.
#[derive(Debug)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// First line of the item (the `fn` keyword), 1-based.
    pub start: usize,
    /// Last line of the body (the closing brace).
    pub end: usize,
    /// Names this function calls (same-file resolution happens later).
    pub calls: BTreeSet<String>,
    /// Identifiers known to carry `f32`/`f64` in this scope (params, lets).
    pub float_idents: BTreeSet<String>,
    /// Identifiers known to be std hash containers in this scope.
    pub hash_idents: BTreeSet<String>,
    /// True when the function lives in a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// The file-level result of the pass.
#[derive(Debug, Default)]
pub struct FlowPass {
    /// Every function in the file, in source order.
    pub functions: Vec<FnInfo>,
    /// Struct/const fields declared `f32`/`f64` outside any function body.
    pub float_fields: BTreeSet<String>,
    /// Struct fields declared `HashMap`/`HashSet` outside any function body.
    pub hash_fields: BTreeSet<String>,
}

impl FlowPass {
    /// Builds the pass from scanned lines.
    #[must_use]
    pub fn build(lines: &[Line]) -> Self {
        let mut pass = FlowPass::default();
        let mut depth: usize = 0;
        // Innermost-function stack: (index into `functions`, depth at `{`).
        let mut stack: Vec<(usize, usize)> = Vec::new();
        // A `fn` signature seen but its body `{` not yet opened.
        let mut pending: Option<usize> = None;

        for line in lines {
            let toks = lexer::tokens(&line.code);
            let mut i = 0;
            while i < toks.len() {
                let t = toks[i].as_str();
                let scope = pending.or_else(|| stack.last().map(|&(idx, _)| idx));
                match t {
                    "fn" => {
                        if let Some(name) = toks.get(i + 1).filter(|n| is_ident(n)) {
                            pass.functions.push(FnInfo {
                                name: name.clone(),
                                start: line.number,
                                end: line.number,
                                calls: BTreeSet::new(),
                                float_idents: BTreeSet::new(),
                                hash_idents: BTreeSet::new(),
                                in_test: line.in_test,
                            });
                            pending = Some(pass.functions.len() - 1);
                            i += 2;
                            continue;
                        }
                    }
                    "{" => {
                        if let Some(idx) = pending.take() {
                            stack.push((idx, depth));
                        }
                        depth += 1;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if stack.last().is_some_and(|&(_, d)| d == depth) {
                            if let Some((idx, _)) = stack.pop() {
                                pass.functions[idx].end = line.number;
                            }
                        }
                    }
                    ";" if pending.is_some() => {
                        // A braceless signature (trait method) ends here.
                        pending = None;
                    }
                    "let" => {
                        scan_let(&toks, i, scope, &mut pass);
                    }
                    _ => {
                        scan_typed_ident(&toks, i, scope, &mut pass);
                        scan_call(&toks, i, scope, &mut pass);
                    }
                }
                i += 1;
            }
        }
        pass
    }

    /// Indices of functions whose name contains any marker, plus
    /// (transitively) every same-file function a marked one calls. Test
    /// functions neither mark nor propagate: what a test calls says
    /// nothing about a production merge path.
    #[must_use]
    pub fn marked_functions(&self, markers: &[&str]) -> BTreeSet<usize> {
        let mut marked: Vec<bool> = self
            .functions
            .iter()
            .map(|f| {
                let lower = f.name.to_lowercase();
                !f.in_test && markers.iter().any(|m| lower.contains(m))
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.functions.len() {
                if !marked[i] {
                    continue;
                }
                for (j, callee) in self.functions.iter().enumerate() {
                    if !marked[j]
                        && !callee.in_test
                        && self.functions[i].calls.contains(&callee.name)
                    {
                        marked[j] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        marked
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(i))
            .collect()
    }

    /// The innermost function containing `line`, if any.
    #[must_use]
    pub fn function_at(&self, line: usize) -> Option<usize> {
        self.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.start <= line && line <= f.end)
            .max_by_key(|(_, f)| f.start)
            .map(|(i, _)| i)
    }

    /// True when `ident` is a known float carrier in function `scope`
    /// (or a file-level float field when `scope` is `None`).
    #[must_use]
    pub fn is_float(&self, scope: Option<usize>, ident: &str) -> bool {
        self.float_fields.contains(ident)
            || scope.is_some_and(|s| self.functions[s].float_idents.contains(ident))
    }

    /// True when `ident` is a known std hash container in function `scope`
    /// (or a file-level hash field when `scope` is `None`).
    #[must_use]
    pub fn is_hash(&self, scope: Option<usize>, ident: &str) -> bool {
        self.hash_fields.contains(ident)
            || scope.is_some_and(|s| self.functions[s].hash_idents.contains(ident))
    }

    fn record_float(&mut self, scope: Option<usize>, ident: &str) {
        match scope {
            Some(s) => {
                self.functions[s].float_idents.insert(ident.to_owned());
            }
            None => {
                self.float_fields.insert(ident.to_owned());
            }
        }
    }

    fn record_hash(&mut self, scope: Option<usize>, ident: &str) {
        match scope {
            Some(s) => {
                self.functions[s].hash_idents.insert(ident.to_owned());
            }
            None => {
                self.hash_fields.insert(ident.to_owned());
            }
        }
    }
}

/// True for identifier-ish tokens (the tokenizer already groups them).
fn is_ident(tok: &str) -> bool {
    tok.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
        && !KEYWORDS.contains(&tok)
}

/// True when the token run starting at `i` spells a float literal
/// (`digits . digits`).
fn is_float_literal(toks: &[String], i: usize) -> bool {
    let digits = |t: &str| !t.is_empty() && t.chars().all(|c| c.is_ascii_digit() || c == '_');
    toks.get(i).is_some_and(|t| digits(t))
        && toks.get(i + 1).is_some_and(|t| t == ".")
        && toks.get(i + 2).is_some_and(|t| digits(t))
}

/// True for suffixed float literals (`0f64`, `1_5f32`).
fn is_suffixed_float(tok: &str) -> bool {
    (tok.ends_with("f64") || tok.ends_with("f32"))
        && tok.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Scans `ident : Type` annotations (params, struct fields, typed lets).
fn scan_typed_ident(toks: &[String], i: usize, scope: Option<usize>, pass: &mut FlowPass) {
    if !is_ident(&toks[i]) {
        return;
    }
    // `ident :` but not `ident ::` and not `:: ident :`.
    if toks.get(i + 1).is_none_or(|t| t != ":")
        || toks.get(i + 2).is_some_and(|t| t == ":")
        || (i > 0 && toks[i - 1] == ":")
    {
        return;
    }
    // Walk the type head: skip `&`, `mut`, and path segments.
    let mut j = i + 2;
    let mut hops = 0;
    while j < toks.len() && hops < 10 {
        match toks[j].as_str() {
            "&" | "mut" | ":" => j += 1,
            "f64" | "f32" => {
                pass.record_float(scope, &toks[i]);
                return;
            }
            "HashMap" | "HashSet" => {
                pass.record_hash(scope, &toks[i]);
                return;
            }
            // A path segment (`std`, `collections`, …) continues only
            // through `::`; any other ident ends the type head.
            t if is_ident(t) && toks.get(j + 1).is_some_and(|n| n == ":") => j += 1,
            _ => return,
        }
        hops += 1;
    }
}

/// Scans `let [mut] ident = …` initializers for float/hash evidence.
fn scan_let(toks: &[String], i: usize, scope: Option<usize>, pass: &mut FlowPass) {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t == "mut") {
        j += 1;
    }
    let Some(name) = toks.get(j).filter(|t| is_ident(t)) else {
        return;
    };
    // A typed let (`let x: f64 = …`) is handled by `scan_typed_ident`;
    // here we classify by the initializer expression up to `;`/line end.
    let mut k = j + 1;
    while k < toks.len() && toks[k] != ";" {
        let t = toks[k].as_str();
        if t == "f64" || t == "f32" || is_suffixed_float(t) || is_float_literal(toks, k) {
            pass.record_float(scope, name);
            return;
        }
        if t == "HashMap" || t == "HashSet" {
            pass.record_hash(scope, name);
            return;
        }
        k += 1;
    }
}

/// Records `ident (` call sites into the enclosing function.
fn scan_call(toks: &[String], i: usize, scope: Option<usize>, pass: &mut FlowPass) {
    let Some(s) = scope else { return };
    if is_ident(&toks[i])
        && toks.get(i + 1).is_some_and(|t| t == "(")
        && (i == 0 || toks[i - 1] != "fn")
    {
        pass.functions[s].calls.insert(toks[i].clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn build(src: &str) -> FlowPass {
        FlowPass::build(&scan(src))
    }

    #[test]
    fn tracks_function_extents_and_nesting() {
        let src = "fn outer() {\n    fn inner() {\n        body();\n    }\n    tail();\n}\nfn second() {}\n";
        let pass = build(src);
        assert_eq!(pass.functions.len(), 3);
        let outer = &pass.functions[0];
        assert_eq!((outer.start, outer.end), (1, 6));
        let inner = &pass.functions[1];
        assert_eq!((inner.start, inner.end), (2, 4));
        assert_eq!(pass.function_at(3), Some(1), "innermost wins");
        assert_eq!(pass.function_at(5), Some(0));
        assert_eq!(pass.function_at(7), Some(2));
        assert!(outer.calls.contains("tail"));
        assert!(inner.calls.contains("body"));
    }

    #[test]
    fn typed_idents_cover_params_lets_and_fields() {
        let src = "struct S {\n    total: f64,\n    index: HashMap<u64, u64>,\n}\nfn f(rate: f32, n: u64) {\n    let mut acc: f64 = 0.0;\n    let seen = HashSet::new();\n    let count = 0;\n}\n";
        let pass = build(src);
        assert!(pass.float_fields.contains("total"));
        assert!(pass.hash_fields.contains("index"));
        let f = &pass.functions[0];
        assert!(f.float_idents.contains("rate"));
        assert!(f.float_idents.contains("acc"));
        assert!(f.hash_idents.contains("seen"));
        assert!(!f.float_idents.contains("n"));
        assert!(!f.float_idents.contains("count"));
    }

    #[test]
    fn let_initializers_classify_floats_and_hashes() {
        let src = "fn f() {\n    let x = 1.5;\n    let y = 0f64;\n    let m = std::collections::HashMap::with_capacity(4);\n    let r = 0..10;\n    let t = pair.0;\n}\n";
        let pass = build(src);
        let f = &pass.functions[0];
        assert!(f.float_idents.contains("x"));
        assert!(f.float_idents.contains("y"));
        assert!(f.hash_idents.contains("m"));
        assert!(!f.float_idents.contains("r"), "ranges are not floats");
        assert!(!f.float_idents.contains("t"), "tuple access is not a float");
    }

    #[test]
    fn marked_functions_propagate_through_calls() {
        let src = "fn merge_all() {\n    helper();\n}\nfn helper() {\n    leaf();\n}\nfn leaf() {}\nfn unrelated() {}\n";
        let pass = build(src);
        let marked = pass.marked_functions(&["merge"]);
        let names: Vec<&str> = marked
            .iter()
            .map(|&i| pass.functions[i].name.as_str())
            .collect();
        assert_eq!(names, vec!["merge_all", "helper", "leaf"]);
    }

    #[test]
    fn trait_signatures_do_not_swallow_the_file() {
        let src = "trait T {\n    fn sig(&self) -> u8;\n    fn with_default(&self) -> u8 {\n        1\n    }\n}\nfn after() {}\n";
        let pass = build(src);
        assert_eq!(pass.functions.len(), 3);
        assert_eq!(pass.function_at(7), Some(2));
        assert_eq!(pass.functions[2].name, "after");
    }
}
