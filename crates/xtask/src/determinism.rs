//! Rule `determinism`: the race/nondeterminism lint family.
//!
//! The reproduction's load-bearing invariant is that fleet output is
//! byte-identical at any parallelism. Four sub-rules guard the ways that
//! invariant silently erodes, using the [`crate::flow`] pass for scope
//! and type context:
//!
//! - **hash-iter** — iteration over std hash containers (`HashMap` /
//!   `HashSet` `iter`/`keys`/`values`/`drain`/`into_iter` or a `for … in`
//!   loop) is order-nondeterministic; use `BTreeMap`/`BTreeSet` or a
//!   sorted collect.
//! - **entropy** — wall-clock (`SystemTime::now`, `Instant::now`),
//!   thread-identity, host-parallelism, and pointer-to-`usize` reads, and
//!   RNG seeds that do not trace back through `derive_seed`/a shard seed.
//! - **float-accum** — `f32`/`f64` `+=` or `.sum()` inside functions
//!   whose names (or same-file callers) mark them as merge/fold/reduce
//!   paths, where accumulation order is schedule-dependent.
//! - **unstable-sort** — `sort_unstable_by`/`sort_unstable_by_key`, where
//!   tied keys can land in either order. Plain `sort_unstable()` on the
//!   full value is total-order and stays allowed.
//!
//! A deliberate exception carries `// audit: allow(determinism, <reason>)`.

use crate::flow::FlowPass;
use crate::lexer::{self, Line};

/// Hash-container methods whose visit order follows the hasher.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Function-name fragments that mark a merge/fold/reduce path.
const MERGE_MARKERS: &[&str] = &["merge", "fold", "reduce", "accumulate", "combine"];

/// `A::B` paths that read schedule- or host-dependent state.
const CLOCK_PATHS: &[(&str, &str, &str)] = &[
    ("SystemTime", "now", "reads the wall clock"),
    ("Instant", "now", "reads host monotonic time"),
    ("thread", "current", "reads thread identity"),
];

/// Constructors that seed from ambient entropy rather than a plan.
const ENTROPY_FNS: &[&str] = &["unseeded", "from_entropy", "from_wall_clock_entropy"];

/// A raw finding: `(line, message)`.
pub type DeterminismFinding = (usize, String);

/// Scans one library file's lines for schedule-dependent constructs.
pub fn check(lines: &[Line]) -> Vec<DeterminismFinding> {
    let flow = FlowPass::build(lines);
    let marked = flow.marked_functions(MERGE_MARKERS);
    let mut findings = Vec::new();
    for line in lines {
        if line.in_test || line.is_code_blank() {
            continue;
        }
        let toks = lexer::tokens(&line.code);
        let scope = flow.function_at(line.number);
        check_hash_iteration(line, &toks, scope, &flow, &mut findings);
        check_clock_and_entropy(line, &toks, &mut findings);
        if scope.is_some_and(|s| marked.contains(&s)) {
            check_float_accumulation(line, &toks, scope, &flow, &mut findings);
        }
        check_unstable_sort(line, &toks, &mut findings);
    }
    findings
}

/// Sub-rule (a): iteration over std hash containers.
fn check_hash_iteration(
    line: &Line,
    toks: &[String],
    scope: Option<usize>,
    flow: &FlowPass,
    findings: &mut Vec<DeterminismFinding>,
) {
    for i in 0..toks.len() {
        // `recv.iter(` / `self.field.keys(` …
        if toks[i] == "."
            && i > 0
            && toks
                .get(i + 1)
                .is_some_and(|m| HASH_ITER_METHODS.contains(&m.as_str()))
            && toks.get(i + 2).is_some_and(|p| p == "(")
        {
            let recv = toks[i - 1].as_str();
            if flow.is_hash(scope, recv) {
                findings.push((
                    line.number,
                    format!(
                        "iteration over a std hash container (`{recv}.{}`) follows the hasher, \
                         not a stable order; use BTreeMap/BTreeSet or a sorted collect, or \
                         whitelist with `// audit: allow(determinism, <reason>)`",
                        toks[i + 1]
                    ),
                ));
            }
        }
        // `for k in &map` / `for (k, v) in map` — the implicit IntoIterator.
        if toks[i] == "for" {
            let Some(j) = (i + 1..toks.len()).find(|&j| toks[j] == "in") else {
                continue;
            };
            let mut k = j + 1;
            while toks.get(k).is_some_and(|t| t == "&" || t == "mut") {
                k += 1;
            }
            if let Some(recv) = toks.get(k) {
                let terminated = toks
                    .get(k + 1)
                    .is_none_or(|n| n == "{" || n == "." && toks.get(k + 2).is_none());
                if terminated && flow.is_hash(scope, recv) {
                    findings.push((
                        line.number,
                        format!(
                            "`for … in {recv}` iterates a std hash container in hasher order; \
                             use BTreeMap/BTreeSet or a sorted collect, or whitelist with \
                             `// audit: allow(determinism, <reason>)`"
                        ),
                    ));
                }
            }
        }
    }
}

/// Sub-rule (b): wall-clock, thread-identity, pointer, and unplanned-seed reads.
fn check_clock_and_entropy(line: &Line, toks: &[String], findings: &mut Vec<DeterminismFinding>) {
    let mut ptr_flagged = false;
    for i in 0..toks.len() {
        let t = toks[i].as_str();
        // `SystemTime::now` / `Instant::now` / `thread::current`.
        for &(head, tail, what) in CLOCK_PATHS {
            if t == head
                && toks.get(i + 1).is_some_and(|a| a == ":")
                && toks.get(i + 2).is_some_and(|b| b == ":")
                && toks.get(i + 3).is_some_and(|c| c == tail)
            {
                findings.push((
                    line.number,
                    format!(
                        "`{head}::{tail}` {what} — schedule- and host-dependent; derive values \
                         from the configured seed/plan or whitelist with \
                         `// audit: allow(determinism, <reason>)`"
                    ),
                ));
            }
        }
        if t == "available_parallelism" {
            findings.push((
                line.number,
                "`available_parallelism` reads host CPU topology, which varies across machines; \
                 take parallelism from configuration or whitelist with \
                 `// audit: allow(determinism, <reason>)`"
                    .to_owned(),
            ));
        }
        // Pointer-to-usize: address-space layout leaking into values.
        if !ptr_flagged
            && (t == "as_ptr" || t == "as_mut_ptr")
            && (0..toks.len().saturating_sub(1)).any(|j| toks[j] == "as" && toks[j + 1] == "usize")
        {
            ptr_flagged = true;
            findings.push((
                line.number,
                "casting a pointer to `usize` leaks address-space layout (ASLR makes it vary \
                 per run); key on stable identifiers instead or whitelist with \
                 `// audit: allow(determinism, <reason>)`"
                    .to_owned(),
            ));
        }
        // Ambient-entropy constructors (definition sites are exempt).
        if ENTROPY_FNS.contains(&t)
            && toks.get(i + 1).is_some_and(|p| p == "(")
            && (i == 0 || toks[i - 1] != "fn")
        {
            findings.push((
                line.number,
                format!(
                    "`{t}()` seeds from ambient entropy, bypassing the seed-derivation chain; \
                     thread a seed from `ShardPlan`/`derive_seed` or whitelist with \
                     `// audit: allow(determinism, <reason>)`"
                ),
            ));
        }
        // Seeds that do not trace back to a derived seed.
        if t == "seed_from_u64"
            && toks.get(i + 1).is_some_and(|p| p == "(")
            && (i == 0 || toks[i - 1] != "fn")
        {
            let arg_derived = toks[i + 2..].iter().any(|a| {
                let lower = a.to_lowercase();
                lower.contains("seed") || lower.contains("derive")
            });
            if !arg_derived {
                findings.push((
                    line.number,
                    "RNG seed does not trace back to a derived seed (no `seed`/`derive` in the \
                     argument); route it through `derive_seed`/a `ShardPlan` shard seed or \
                     whitelist with `// audit: allow(determinism, <reason>)`"
                        .to_owned(),
                ));
            }
        }
    }
}

/// Sub-rule (c): float accumulation inside merge/fold/reduce paths.
fn check_float_accumulation(
    line: &Line,
    toks: &[String],
    scope: Option<usize>,
    flow: &FlowPass,
    findings: &mut Vec<DeterminismFinding>,
) {
    for i in 0..toks.len() {
        // `x += …` where `x` is a known float carrier.
        if toks[i] == "+"
            && toks.get(i + 1).is_some_and(|e| e == "=")
            && i > 0
            && flow.is_float(scope, &toks[i - 1])
        {
            findings.push((
                line.number,
                format!(
                    "float accumulation (`{} +=`) in a merge/fold path depends on evaluation \
                     order under reassociation; accumulate integers or fix the fold order, or \
                     whitelist with `// audit: allow(determinism, <reason>)`",
                    toks[i - 1]
                ),
            ));
        }
        // `.sum::<f64>()` / `.sum()` with float evidence on the line.
        if toks[i] == "." && toks.get(i + 1).is_some_and(|m| m == "sum") {
            let turbofish_float = toks
                .get(i + 2..)
                .unwrap_or(&[])
                .iter()
                .take(6)
                .any(|a| a == "f64" || a == "f32");
            let line_float_evidence = toks
                .iter()
                .any(|a| a == "f64" || a == "f32" || flow.is_float(scope, a));
            if turbofish_float || line_float_evidence {
                findings.push((
                    line.number,
                    "float `.sum()` in a merge/fold path depends on accumulation order; sum \
                     integers or fix the fold order, or whitelist with \
                     `// audit: allow(determinism, <reason>)`"
                        .to_owned(),
                ));
            }
        }
    }
}

/// Sub-rule (d): unstable sorts with caller-supplied (tie-prone) keys.
fn check_unstable_sort(line: &Line, toks: &[String], findings: &mut Vec<DeterminismFinding>) {
    for i in 0..toks.len() {
        let t = toks[i].as_str();
        if (t == "sort_unstable_by" || t == "sort_unstable_by_key")
            && toks.get(i + 1).is_some_and(|p| p == "(")
            && (i == 0 || toks[i - 1] != "fn")
        {
            findings.push((
                line.number,
                format!(
                    "`{t}` can permute elements whose keys tie, so output order follows the \
                     schedule; use the stable `sort_by`/`sort_by_key`, sort the full value with \
                     `sort_unstable()`, or whitelist with \
                     `// audit: allow(determinism, <reason>)`"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn run(src: &str) -> Vec<DeterminismFinding> {
        check(&scan(src))
    }

    #[test]
    fn flags_hash_map_method_iteration() {
        let src = "fn f() {\n    let mut m = HashMap::new();\n    for v in m.values() { use_it(v); }\n}\n";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].1.contains("m.values"));
    }

    #[test]
    fn flags_hash_field_iteration_via_self() {
        let src = "struct S { index: HashMap<u64, u64> }\nimpl S {\n    fn scan(&self) -> usize {\n        self.index.iter().count()\n    }\n}\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn flags_for_loop_over_hash_set() {
        let src =
            "fn f(seen: HashSet<u64>) {\n    for s in &seen {\n        use_it(s);\n    }\n}\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn btree_iteration_is_fine() {
        let src =
            "fn f() {\n    let m = BTreeMap::new();\n    for v in m.values() { use_it(v); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn hash_lookup_without_iteration_is_fine() {
        let src = "fn f(m: HashMap<u64, u64>) -> bool {\n    m.contains_key(&1) && m.get(&2).is_some()\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn flags_clock_thread_and_parallelism_reads() {
        assert_eq!(run("fn f() { let t = SystemTime::now(); }").len(), 1);
        assert_eq!(run("fn f() { let t = Instant::now(); }").len(), 1);
        assert_eq!(run("fn f() { let id = thread::current().id(); }").len(), 1);
        assert_eq!(
            run("fn f() { let n = std::thread::available_parallelism(); }").len(),
            1
        );
    }

    #[test]
    fn flags_pointer_to_usize() {
        assert_eq!(
            run("fn f(v: &[u8]) { let a = v.as_ptr() as usize; }").len(),
            1
        );
        assert!(run("fn f(v: &[u8]) { let p = v.as_ptr(); }").is_empty());
    }

    #[test]
    fn flags_entropy_constructors_but_not_their_definitions() {
        assert_eq!(
            run("fn f() { let rng = StdRng::from_wall_clock_entropy(); }").len(),
            1
        );
        // The definition site itself is exempt; its body is flagged separately.
        assert!(run("pub fn from_wall_clock_entropy() -> Self { body() }").is_empty());
    }

    #[test]
    fn flags_literal_seed_but_not_derived_seed() {
        assert_eq!(
            run("fn f() { let r = StdRng::seed_from_u64(42); }").len(),
            1
        );
        assert!(run("fn f() { let r = StdRng::seed_from_u64(shard.seed); }").is_empty());
        assert!(run("fn f() { let r = StdRng::seed_from_u64(derive_seed(b, s, i)); }").is_empty());
    }

    #[test]
    fn flags_float_accumulation_only_in_merge_paths() {
        let merge = "fn merge_totals(xs: &[f64]) -> f64 {\n    let mut total: f64 = 0.0;\n    for x in xs { total += x; }\n    total\n}\n";
        let found = run(merge);
        assert_eq!(found.len(), 1);
        assert!(found[0].1.contains("total +="));
        let plain = "fn scale(xs: &[f64]) -> f64 {\n    let mut total: f64 = 0.0;\n    for x in xs { total += x; }\n    total\n}\n";
        assert!(run(plain).is_empty(), "unmarked functions are exempt");
    }

    #[test]
    fn float_accumulation_propagates_to_callees_of_merge_paths() {
        let src = "fn merge_all(xs: &[f64]) -> f64 {\n    helper(xs)\n}\nfn helper(xs: &[f64]) -> f64 {\n    let mut acc = 0.0;\n    for x in xs { acc += x; }\n    acc\n}\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn flags_float_sum_in_merge_paths() {
        let src = "fn fold_rates(xs: &[f64]) -> f64 {\n    xs.iter().sum::<f64>()\n}\n";
        assert_eq!(run(src).len(), 1);
        let int = "fn fold_counts(xs: &[u64]) -> u64 {\n    xs.iter().sum()\n}\n";
        assert!(run(int).is_empty(), "integer sums are order-free");
    }

    #[test]
    fn integer_accumulation_in_merge_paths_is_fine() {
        let src = "fn merge_counts(xs: &[u64]) -> u64 {\n    let mut total: u64 = 0;\n    for x in xs { total += x; }\n    total\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn flags_keyed_unstable_sorts_but_not_total_order() {
        assert_eq!(
            run("fn f(v: &mut Vec<u64>) { v.sort_unstable_by_key(|x| x % 3); }").len(),
            1
        );
        assert_eq!(
            run("fn f(v: &mut Vec<u64>) { v.sort_unstable_by(|a, b| a.cmp(b)); }").len(),
            1
        );
        assert!(run("fn f(v: &mut Vec<u64>) { v.sort_unstable(); }").is_empty());
        assert!(run("fn f(v: &mut Vec<u64>) { v.sort_by_key(|x| x % 3); }").is_empty());
    }

    #[test]
    fn test_regions_are_skipped() {
        let src =
            "#[cfg(test)]\nmod t {\n    fn f() { let t = SystemTime::now(); }\n}\nfn lib() { }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        assert!(run(r#"fn f() { let s = "SystemTime::now"; } // Instant::now"#).is_empty());
    }
}
