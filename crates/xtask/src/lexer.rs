//! A minimal Rust source scanner: separates code from comments and blanks
//! string contents, so the lint rules never fire on prose or literals.
//!
//! This is intentionally not a full parser. It tracks exactly the lexical
//! state needed to answer three questions per line:
//!
//! 1. What does the line's *code* look like with comments removed and string
//!    contents blanked (quotes retained)?
//! 2. What comment text, if any, rides on the line (for `audit:` pragmas)?
//! 3. Is the line inside `#[cfg(test)]` / `#[test]` territory?

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Source line number, 1-based.
    pub number: usize,
    /// The line with comments stripped and string/char contents blanked.
    pub code: String,
    /// Regular (non-doc) comment text on the line — the only place
    /// `audit:` pragmas are recognised, so doc prose can *describe* the
    /// pragma grammar without invoking it.
    pub comment: String,
    /// Doc-comment text (`///`, `//!`) on the line, for citation scanning.
    pub doc: String,
    /// True when the line sits inside a `#[cfg(test)]` or `#[test]` item.
    pub in_test: bool,
}

impl Line {
    /// True when the line carries no code tokens at all.
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    LineComment { doc: bool },
    BlockComment { depth: usize },
    Str,
    RawStr { hashes: usize },
}

/// Scans a whole file into [`Line`] records.
pub fn scan(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut state = State::Normal;
    // Test-region tracking: brace depth, plus a stack of depths at which a
    // `#[cfg(test)]`/`#[test]` item's body opened.
    let mut depth: usize = 0;
    let mut pending_test_attr = false;
    let mut test_regions: Vec<usize> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut doc = String::new();
        // A line is "in test" if a region is already open, or if an opening
        // attribute was seen and we are still between attribute and body.
        let mut in_test = !test_regions.is_empty() || pending_test_attr;

        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                State::Normal => match c {
                    '/' if next == Some('/') => {
                        let doc = matches!(bytes.get(i + 2), Some('/' | '!'));
                        state = State::LineComment { doc };
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment { depth: 1 };
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    'r' if matches!(next, Some('"' | '#')) && !prev_is_ident_char(&code) => {
                        // Raw string start: r"..." or r#"..."# etc.
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            code.push('"');
                            state = State::RawStr { hashes };
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: a char literal closes with
                        // a quote after one (possibly escaped) character.
                        let is_char_lit = match next {
                            Some('\\') => true,
                            Some(_) => bytes.get(i + 2) == Some(&'\''),
                            None => false,
                        };
                        if is_char_lit {
                            // Blank the contents, keep the quotes.
                            code.push('\'');
                            let mut j = i + 1;
                            if bytes.get(j) == Some(&'\\') {
                                j += 2; // skip escape head; scan to quote below
                                while j < bytes.len() && bytes[j] != '\'' {
                                    j += 1;
                                }
                            } else {
                                j += 1;
                            }
                            code.push(' ');
                            code.push('\'');
                            i = j + 1;
                        } else {
                            code.push('\''); // lifetime marker
                            i += 1;
                        }
                    }
                    '{' => {
                        if pending_test_attr {
                            test_regions.push(depth);
                            pending_test_attr = false;
                            in_test = true;
                        }
                        depth += 1;
                        code.push(c);
                        i += 1;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if test_regions.last() == Some(&depth) {
                            test_regions.pop();
                        }
                        code.push(c);
                        i += 1;
                    }
                    ';' => {
                        // An attribute followed by a braceless item (e.g.
                        // `#[cfg(test)] use x;`) ends at the semicolon.
                        if pending_test_attr && test_regions.is_empty() {
                            pending_test_attr = false;
                        }
                        code.push(c);
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::LineComment { doc: is_doc } => {
                    if is_doc {
                        doc.push(c);
                    } else {
                        comment.push(c);
                    }
                    i += 1;
                }
                State::BlockComment { depth: d } => {
                    if c == '*' && next == Some('/') {
                        if d == 1 {
                            state = State::Normal;
                        } else {
                            state = State::BlockComment { depth: d - 1 };
                        }
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment { depth: d + 1 };
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    '"' => {
                        code.push('"');
                        state = State::Normal;
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
                State::RawStr { hashes } => {
                    if c == '"' {
                        let mut j = i + 1;
                        let mut seen = 0;
                        while seen < hashes && bytes.get(j) == Some(&'#') {
                            seen += 1;
                            j += 1;
                        }
                        if seen == hashes {
                            code.push('"');
                            state = State::Normal;
                            i = j;
                        } else {
                            code.push(' ');
                            i += 1;
                        }
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }

        // Line comments end with the line.
        if matches!(state, State::LineComment { .. }) {
            state = State::Normal;
        }

        // Detect test attributes on the code part of this line.
        let trimmed = code.trim();
        if trimmed.contains("#[cfg(test)]") || trimmed == "#[test]" || trimmed.contains("#[test]") {
            pending_test_attr = true;
            in_test = true;
        }

        out.push(Line {
            number: idx + 1,
            code,
            comment,
            doc,
            in_test,
        });
    }
    out
}

fn prev_is_ident_char(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Splits a code string into identifier-ish tokens and single-char symbols,
/// preserving order. Identifiers keep their full `snake_case` form.
pub fn tokens(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in code.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            if !c.is_whitespace() {
                out.push(c.to_string());
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let lines =
            scan("let x = 1; // unwrap() here is prose\nlet y = 2; /* panic! */ let z = 3;");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("unwrap"));
        assert!(!lines[1].code.contains("panic"));
        assert!(lines[1].code.contains("let z"));
    }

    #[test]
    fn doc_comments_are_kept_separate() {
        let lines = scan("/// Implements Eq. 1. audit: allow(cast, nope)\nfn f() {}\n// audit: allow(cast, yes)\n");
        assert!(lines[0].doc.contains("Eq. 1"));
        assert!(
            lines[0].comment.is_empty(),
            "doc prose must not reach the pragma scanner"
        );
        assert!(lines[2].comment.contains("allow(cast"));
        assert!(lines[2].doc.is_empty());
    }

    #[test]
    fn blanks_string_contents() {
        let lines = scan(r#"let s = "call .unwrap() now"; s.len();"#);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("len"));
    }

    #[test]
    fn handles_raw_strings() {
        let lines = scan(r##"let s = r#"panic!("inside")"#; x.unwrap();"##);
        assert!(lines[0].code.contains("unwrap"));
        assert_eq!(lines[0].code.matches("panic").count(), 0);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = scan("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(lines[0].code.contains("'a"));
        let lines = scan(r"let c = '\n'; c.is_ascii();");
        assert!(lines[0].code.contains("is_ascii"));
    }

    #[test]
    fn marks_cfg_test_regions() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test, "region must close after the mod");
    }

    #[test]
    fn marks_test_fn_regions() {
        let src = "fn a() {}\n#[test]\nfn t() {\n  body();\n}\nfn b() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn multiline_block_comment() {
        let src = "/* one\n two unwrap()\n*/ let x = 1;";
        let lines = scan(src);
        assert!(lines[0].is_code_blank());
        assert!(lines[1].is_code_blank());
        assert!(lines[2].code.contains("let x"));
    }

    #[test]
    fn tokenizes_snake_idents() {
        let toks = tokens("total_secs as f64 + x.len()");
        assert_eq!(
            toks,
            vec!["total_secs", "as", "f64", "+", "x", ".", "len", "(", ")"]
        );
    }
}
