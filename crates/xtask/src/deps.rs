//! Rule `dep`: manifest hygiene.
//!
//! Every dependency a crate declares in `[dependencies]`,
//! `[dev-dependencies]`, or `[build-dependencies]` must actually be named
//! somewhere in that crate's sources (as `use dep::…`, `dep::path`, or an
//! attribute). Phantom dependencies rot: they lengthen builds, widen the
//! supply-chain surface, and — in this offline workspace — break the
//! no-external-deps invariant silently.
//!
//! Declared-but-unused deps are whitelisted in the manifest itself with a
//! trailing `# audit: allow(dep, <reason>)` comment on the entry's line.
//!
//! The parser is a hand-rolled TOML subset: section headers, `key = value`
//! entries, and `key.workspace = true` dotted entries — exactly what Cargo
//! manifests in this workspace use.

/// One declared dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEntry {
    /// Dependency name as written in the manifest.
    pub name: String,
    /// Manifest line number, 1-based.
    pub line: usize,
    /// Section it was declared in (for messages).
    pub section: String,
    /// Comment text trailing the entry (for pragma lookup).
    pub comment: String,
}

/// Parses dependency entries out of a Cargo.toml's text.
///
/// Only `[dependencies]`, `[dev-dependencies]`, and `[build-dependencies]`
/// sections are considered; `[workspace.dependencies]` is the shared
/// version table, not a usage declaration, and is skipped.
pub fn declared_deps(manifest: &str) -> Vec<DepEntry> {
    let mut out = Vec::new();
    let mut section = String::new();
    let mut in_dep_section = false;
    for (idx, raw) in manifest.lines().enumerate() {
        let (code, comment) = split_toml_comment(raw);
        let line = code.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_owned();
            in_dep_section = matches!(
                section.as_str(),
                "dependencies" | "dev-dependencies" | "build-dependencies"
            );
            continue;
        }
        if !in_dep_section || line.is_empty() {
            continue;
        }
        // Entry forms: `name = ...`, `name.workspace = true`,
        // `name = { path = "...", ... }`.
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        let name = key.split('.').next().unwrap_or(key).trim();
        if name.is_empty() {
            continue;
        }
        out.push(DepEntry {
            name: name.to_owned(),
            line: idx + 1,
            section: section.clone(),
            comment: comment.to_owned(),
        });
    }
    out
}

/// Splits a TOML line at its comment marker, respecting quoted strings.
fn split_toml_comment(line: &str) -> (&str, &str) {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return (&line[..i], &line[i + 1..]),
            _ => {}
        }
    }
    (line, "")
}

/// True when `ident` (underscore form of a dep name) appears as a whole
/// token in the given code text.
pub fn ident_used(code: &str, ident: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(ident) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let c = bytes[at - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let end = at + ident.len();
        let after_ok = end >= bytes.len() || {
            let c = bytes[end] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + ident.len().max(1);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = "\
[package]
name = \"demo\"

[dependencies]
hsdp-core.workspace = true
serde = { version = \"1\", features = [\"derive\"] } # audit: allow(dep, kept for downstream)

[dev-dependencies]
hsdp-rng.workspace = true

[workspace.dependencies]
phantom = \"1.0\"
";

    #[test]
    fn parses_all_dep_sections() {
        let deps = declared_deps(MANIFEST);
        let names: Vec<&str> = deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["hsdp-core", "serde", "hsdp-rng"]);
        assert_eq!(deps[0].section, "dependencies");
        assert_eq!(deps[2].section, "dev-dependencies");
    }

    #[test]
    fn workspace_dependency_table_is_skipped() {
        let deps = declared_deps(MANIFEST);
        assert!(deps.iter().all(|d| d.name != "phantom"));
    }

    #[test]
    fn trailing_comment_is_captured() {
        let deps = declared_deps(MANIFEST);
        let serde = deps.iter().find(|d| d.name == "serde").expect("present");
        assert!(serde.comment.contains("audit: allow(dep"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let (code, comment) = split_toml_comment("url = \"https://x/#frag\" # real");
        assert!(code.contains("#frag"));
        assert_eq!(comment.trim(), "real");
    }

    #[test]
    fn ident_matching_respects_boundaries() {
        assert!(ident_used("use hsdp_core::units;", "hsdp_core"));
        assert!(ident_used("hsdp_core::model::f()", "hsdp_core"));
        assert!(!ident_used("use hsdp_core_extra::x;", "hsdp_core"));
        assert!(!ident_used("myhsdp_core", "hsdp_core"));
        assert!(!ident_used("", "hsdp_core"));
    }
}
