//! `xtask` — workspace static analysis, from scratch and dependency-free.
//!
//! Run as `cargo run -p xtask -- audit`. The auditor walks the workspace
//! sources and enforces four rules tailored to this paper-model codebase:
//!
//! | rule       | what it enforces                                              |
//! |------------|---------------------------------------------------------------|
//! | `cast`     | units discipline: no raw `as` casts / mixed-unit arithmetic on |
//! |            | seconds/bytes/cycles-named bindings outside `core/src/units.rs`|
//! | `panic`    | panic-free libraries: no `unwrap`/`expect`/`panic!`-family in  |
//! |            | non-test library code                                          |
//! | `citation` | paper traceability: public items in `core/src/{model,study,    |
//! |            | paper}.rs` cite the equation/figure they implement             |
//! | `dep`      | manifest hygiene: declared dependencies are actually imported  |
//! | `determinism` | schedule-independence: no hash-order iteration, ambient     |
//! |            | entropy/clock reads, float accumulation in merge paths, or     |
//! |            | tie-prone unstable sorts in model/platform code                |
//! | `unsafe`   | quarantine discipline: `unsafe` only inside `simd`/`hw`        |
//! |            | submodules, and every `unsafe` block carries `// SAFETY:`      |
//!
//! Every rule shares one escape hatch, the inline pragma
//! `// audit: allow(<rule>, <reason>)` (or `# audit: allow(dep, <reason>)`
//! in Cargo.toml) — see [`pragma`]. A pragma without a reason is itself a
//! finding. The process exits non-zero when any finding survives.

#![forbid(unsafe_code)]

pub mod casts;
pub mod citations;
pub mod deps;
pub mod determinism;
pub mod flow;
pub mod lexer;
pub mod panics;
pub mod pragma;
pub mod unsafety;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use pragma::{PragmaIndex, RuleKind};

/// One audit violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: RuleKind,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The result of a full audit pass.
#[derive(Debug, Default)]
pub struct AuditReport {
    pub findings: Vec<Finding>,
    /// Number of Rust source files scanned.
    pub rust_files: usize,
    /// Number of manifests scanned.
    pub manifests: usize,
    /// Number of well-formed `audit: allow` pragmas honoured.
    pub pragmas_honoured: usize,
}

impl AuditReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings for one rule.
    pub fn count(&self, rule: RuleKind) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Renders the report as a machine-readable JSON document (for CI
    /// artifacts). Findings keep their sorted order, so the output is
    /// byte-stable for a given tree.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"rust_files\": {},\n", self.rust_files));
        out.push_str(&format!("  \"manifests\": {},\n", self.manifests));
        out.push_str(&format!(
            "  \"pragmas_honoured\": {},\n",
            self.pragmas_honoured
        ));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                f.rule,
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", "node_modules"];

/// The one file exempt from the `cast` rule: the units layer itself.
const UNITS_FILE: &str = "crates/core/src/units.rs";

/// Files whose public items must cite the paper.
const CITATION_FILES: &[&str] = &[
    "crates/core/src/model.rs",
    "crates/core/src/study.rs",
    "crates/core/src/paper.rs",
];

/// Runs the full audit over the workspace rooted at `root`. `filter`
/// restricts the pass to the named rules (malformed-pragma findings are
/// always reported).
pub fn run_audit(root: &Path, filter: &[RuleKind]) -> io::Result<AuditReport> {
    let enabled = |r: RuleKind| filter.is_empty() || filter.contains(&r);
    let mut report = AuditReport::default();

    let (rust_files, manifests) = collect_files(root)?;
    report.rust_files = rust_files.len();
    report.manifests = manifests.len();

    for rel in &rust_files {
        let source = fs::read_to_string(root.join(rel))?;
        let lines = lexer::scan(&source);
        let rel_str = rel_display(rel);

        let pragma_input: Vec<(usize, String, bool)> = lines
            .iter()
            .map(|l| (l.number, l.comment.clone(), !l.is_code_blank()))
            .collect();
        let index = PragmaIndex::build(&pragma_input);
        for (line, msg) in &index.malformed {
            report.findings.push(Finding {
                rule: RuleKind::Pragma,
                file: rel_str.clone(),
                line: *line,
                message: msg.clone(),
            });
        }

        if enabled(RuleKind::Cast) && in_cast_scope(&rel_str) {
            for (line, message) in casts::check(&lines) {
                if index.allows(line, RuleKind::Cast) {
                    report.pragmas_honoured += 1;
                    continue;
                }
                report.findings.push(Finding {
                    rule: RuleKind::Cast,
                    file: rel_str.clone(),
                    line,
                    message,
                });
            }
        }

        if enabled(RuleKind::Panic) && in_panic_scope(&rel_str) {
            for (line, message) in panics::check(&lines) {
                if index.allows(line, RuleKind::Panic) {
                    report.pragmas_honoured += 1;
                    continue;
                }
                report.findings.push(Finding {
                    rule: RuleKind::Panic,
                    file: rel_str.clone(),
                    line,
                    message,
                });
            }
        }

        if enabled(RuleKind::Determinism) && in_determinism_scope(&rel_str) {
            for (line, message) in determinism::check(&lines) {
                if index.allows(line, RuleKind::Determinism) {
                    report.pragmas_honoured += 1;
                    continue;
                }
                report.findings.push(Finding {
                    rule: RuleKind::Determinism,
                    file: rel_str.clone(),
                    line,
                    message,
                });
            }
        }

        if enabled(RuleKind::Unsafe) && in_unsafe_scope(&rel_str) {
            for (line, message) in unsafety::check(&rel_str, &lines) {
                if index.allows(line, RuleKind::Unsafe) {
                    report.pragmas_honoured += 1;
                    continue;
                }
                report.findings.push(Finding {
                    rule: RuleKind::Unsafe,
                    file: rel_str.clone(),
                    line,
                    message,
                });
            }
        }

        if enabled(RuleKind::Citation) && CITATION_FILES.contains(&rel_str.as_str()) {
            for finding in citations::check(&lines) {
                let waived = finding
                    .doc_lines
                    .iter()
                    .any(|&l| index.allows(l, RuleKind::Citation))
                    // A doc-block pragma sits on a comment-only line, which
                    // PragmaIndex carries forward to the item line itself.
                    || index.allows(finding.line, RuleKind::Citation);
                if waived {
                    report.pragmas_honoured += 1;
                    continue;
                }
                report.findings.push(Finding {
                    rule: RuleKind::Citation,
                    file: rel_str.clone(),
                    line: finding.line,
                    message: finding.message,
                });
            }
        }
    }

    if enabled(RuleKind::Dep) {
        audit_manifests(root, &manifests, &rust_files, &mut report)?;
    }

    report.findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.name()).cmp(&(b.file.as_str(), b.line, b.rule.name()))
    });
    Ok(report)
}

/// Checks every manifest's declared deps against its crate's sources.
fn audit_manifests(
    root: &Path,
    manifests: &[PathBuf],
    rust_files: &[PathBuf],
    report: &mut AuditReport,
) -> io::Result<()> {
    // A manifest owns the rust files under its directory, minus any subtree
    // owned by a nested manifest (the workspace root vs. member crates).
    let manifest_dirs: Vec<PathBuf> = manifests
        .iter()
        .map(|m| m.parent().map(Path::to_path_buf).unwrap_or_default())
        .collect();

    for (mi, manifest_rel) in manifests.iter().enumerate() {
        let text = fs::read_to_string(root.join(manifest_rel))?;
        let rel_str = rel_display(manifest_rel);

        // Pragmas in the manifest: trailing comments and standalone `#`
        // comment lines above an entry.
        let pragma_input: Vec<(usize, String, bool)> = text
            .lines()
            .enumerate()
            .map(|(i, raw)| {
                let (code, comment) = split_manifest_line(raw);
                (i + 1, comment.to_owned(), !code.trim().is_empty())
            })
            .collect();
        let index = PragmaIndex::build(&pragma_input);
        for (line, msg) in &index.malformed {
            report.findings.push(Finding {
                rule: RuleKind::Pragma,
                file: rel_str.clone(),
                line: *line,
                message: msg.clone(),
            });
        }

        let dir = &manifest_dirs[mi];
        let owned: Vec<&PathBuf> = rust_files
            .iter()
            .filter(|f| {
                if !f.starts_with(dir) {
                    return false;
                }
                // Excluded if a more deeply nested manifest owns it.
                !manifest_dirs.iter().enumerate().any(|(oi, other)| {
                    oi != mi && other.starts_with(dir) && other != dir && f.starts_with(other)
                })
            })
            .collect();

        let mut sources = String::new();
        for f in &owned {
            for line in lexer::scan(&fs::read_to_string(root.join(f))?) {
                sources.push_str(&line.code);
                sources.push('\n');
            }
        }

        for dep in deps::declared_deps(&text) {
            let ident = dep.name.replace('-', "_");
            if deps::ident_used(&sources, &ident) {
                continue;
            }
            if index.allows(dep.line, RuleKind::Dep) {
                report.pragmas_honoured += 1;
                continue;
            }
            report.findings.push(Finding {
                rule: RuleKind::Dep,
                file: rel_str.clone(),
                line: dep.line,
                message: format!(
                    "`{}` is declared in [{}] but `{}` is never referenced in this crate's \
                     sources; remove it or whitelist with `# audit: allow(dep, <reason>)`",
                    dep.name, dep.section, ident
                ),
            });
        }
    }
    Ok(())
}

/// Splits a manifest line into (code, comment) at an unquoted `#`.
fn split_manifest_line(line: &str) -> (&str, &str) {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return (&line[..i], &line[i + 1..]),
            _ => {}
        }
    }
    (line, "")
}

/// True when the `cast` rule applies: library/binary sources, not tests or
/// benches, and never the units layer itself.
fn in_cast_scope(rel: &str) -> bool {
    if rel == UNITS_FILE {
        return false;
    }
    rel.starts_with("src/") || rel.contains("/src/")
}

/// True when the `panic` rule applies: library sources only — binary entry
/// points (`main.rs`, `src/bin/`) may fail fast on bad CLI input.
fn in_panic_scope(rel: &str) -> bool {
    (rel.starts_with("src/") || rel.contains("/src/"))
        && !rel.ends_with("/main.rs")
        && !rel.contains("/src/bin/")
}

/// True when the `determinism` rule applies: model/platform library and
/// binary sources. The bench harness measures real host time by design and
/// xtask is the auditor itself, so both crates sit outside the fleet's
/// byte-identical output path.
fn in_determinism_scope(rel: &str) -> bool {
    (rel.starts_with("src/") || rel.contains("/src/"))
        && !rel.starts_with("crates/bench/")
        && !rel.starts_with("crates/xtask/")
}

/// True when the `unsafe` rule applies: every source file in the tree —
/// tests and benches included, since raw-pointer tricks belong in the
/// quarantine no matter who calls them. Only xtask itself is skipped, as
/// with `determinism`: the auditor does not police the auditor, and its
/// crate root carries `forbid(unsafe_code)` anyway.
fn in_unsafe_scope(rel: &str) -> bool {
    !rel.starts_with("crates/xtask/")
}

/// Walks the tree rooted at `root`, returning workspace-relative paths of
/// Rust sources and Cargo manifests, sorted for deterministic reports.
pub fn collect_files(root: &Path) -> io::Result<(Vec<PathBuf>, Vec<PathBuf>)> {
    let mut rust = Vec::new();
    let mut toml = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    rust.push(rel.to_path_buf());
                }
            } else if name == "Cargo.toml" {
                if let Ok(rel) = path.strip_prefix(root) {
                    toml.push(rel.to_path_buf());
                }
            }
        }
    }
    rust.sort();
    toml.sort();
    Ok((rust, toml))
}

/// Renders a relative path with `/` separators on every platform.
fn rel_display(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_scope_excludes_units_and_tests() {
        assert!(in_cast_scope("crates/taxes/src/memops.rs"));
        assert!(in_cast_scope("src/lib.rs"));
        assert!(in_cast_scope("crates/bench/src/bin/fig9.rs"));
        assert!(!in_cast_scope("crates/core/src/units.rs"));
        assert!(!in_cast_scope("crates/core/tests/model_properties.rs"));
        assert!(!in_cast_scope("crates/bench/benches/model_speedup.rs"));
    }

    #[test]
    fn panic_scope_excludes_binaries() {
        assert!(in_panic_scope("crates/core/src/model.rs"));
        assert!(in_panic_scope("src/lib.rs"));
        // The parallel worker pool is library code: it must stay panic-free
        // even though it juggles threads and mutexes.
        assert!(in_panic_scope("crates/simcore/src/pool.rs"));
        assert!(!in_panic_scope("crates/xtask/src/main.rs"));
        assert!(!in_panic_scope("crates/bench/src/bin/fig9.rs"));
        assert!(!in_panic_scope("crates/core/tests/model_properties.rs"));
    }

    #[test]
    fn determinism_scope_excludes_bench_xtask_and_tests() {
        assert!(in_determinism_scope("crates/simcore/src/pool.rs"));
        assert!(in_determinism_scope("crates/platforms/src/runner.rs"));
        assert!(in_determinism_scope("src/lib.rs"));
        assert!(!in_determinism_scope(
            "crates/bench/src/bin/fleet_profile.rs"
        ));
        assert!(!in_determinism_scope("crates/xtask/src/lexer.rs"));
        assert!(!in_determinism_scope(
            "crates/platforms/tests/determinism.rs"
        ));
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = AuditReport {
            findings: vec![Finding {
                rule: RuleKind::Determinism,
                file: "crates/x/src/lib.rs".to_owned(),
                line: 7,
                message: "uses \"quotes\" and `ticks`".to_owned(),
            }],
            rust_files: 3,
            manifests: 1,
            pragmas_honoured: 2,
        };
        let json = report.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"line\": 7"));
        let empty = AuditReport::default().to_json();
        assert!(empty.contains("\"findings\": []"));
        assert!(empty.contains("\"clean\": true"));
    }

    #[test]
    fn manifest_line_split_respects_strings() {
        let (code, comment) = split_manifest_line("x = \"a#b\" # audit: allow(dep, y)");
        assert!(code.contains("a#b"));
        assert!(comment.contains("allow(dep"));
    }
}
