//! Streaming statistics for simulation measurements.

/// Welford-style streaming summary: count, mean, variance, min, max.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty summary).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        *self = Summary {
            count: total,
            mean,
            m2,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        };
    }
}

/// Exact percentile collector (stores all samples; sorted lazily).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Percentiles {
    samples: Vec<f64>,
}

impl Percentiles {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) by nearest-rank, `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Median shortcut.
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 99th percentile shortcut (datacenter tail latency).
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

impl Extend<f64> for Percentiles {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_matches_combined_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut combined = Summary::new();
        for &x in &data {
            combined.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert!((a.mean() - combined.mean()).abs() < 1e-9);
        assert!((a.variance() - combined.variance()).abs() < 1e-9);
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.record(1.0);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        p.extend((1..=100).map(f64::from));
        assert_eq!(p.median(), Some(50.0));
        assert_eq!(p.quantile(0.99), Some(99.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.count(), 100);
    }

    #[test]
    fn percentiles_empty() {
        let p = Percentiles::new();
        assert_eq!(p.median(), None);
        assert_eq!(p.p99(), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_out_of_range_panics() {
        let mut p = Percentiles::new();
        p.record(1.0);
        let _ = p.quantile(1.5);
    }
}
