//! Deterministic parallel execution: a dependency-free scoped worker pool
//! and the shard planning that keeps parallel runs byte-identical to
//! sequential ones.
//!
//! The fleet driver decomposes every platform's query stream into a fixed
//! [`ShardPlan`] — the plan depends only on the workload configuration and
//! the base seed, never on the thread count. Worker threads merely *schedule*
//! the shards; results are reassembled in canonical shard order by
//! [`run_jobs`], so a run at `parallelism = 8` folds to exactly the same
//! record stream as `parallelism = 1`.
//!
//! The pool is hand-rolled on `std::thread::scope` + a mutex-guarded job
//! queue (the workspace builds with no external dependencies and forbids
//! unsafe code), and is library code under the `panic` audit rule: it never
//! panics on its own behalf, and worker panics are propagated — not
//! swallowed — via [`std::panic::resume_unwind`].

use std::sync::{Mutex, MutexGuard, PoisonError};

use hsdp_rng::derive_seed;

/// Locks a mutex, ignoring poisoning: the pool never mutates shared state
/// while holding the lock, so a poisoned queue is still structurally sound,
/// and the poisoning panic itself is re-raised at join time.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `jobs` on up to `parallelism` worker threads and returns their
/// results **in input order**, regardless of which worker finished first.
///
/// With `parallelism <= 1` (or at most one job) everything runs inline on
/// the calling thread — no threads are spawned, making the sequential path
/// zero-overhead and trivially identical to the parallel one.
///
/// If a job panics, the panic is propagated to the caller once all other
/// workers have drained.
pub fn run_jobs<T, F>(parallelism: usize, jobs: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let total = jobs.len();
    if parallelism <= 1 || total <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }

    let workers = parallelism.min(total);
    let queue = Mutex::new(jobs.into_iter().enumerate());
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(total);
    let mut panicked = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Hold the lock only to pop; the job runs unlocked so
                        // workers overlap fully.
                        let next = lock(&queue).next();
                        match next {
                            Some((index, job)) => local.push((index, job())),
                            None => return local,
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => indexed.extend(local),
                Err(payload) => panicked = Some(payload),
            }
        }
    });
    if let Some(payload) = panicked {
        std::panic::resume_unwind(payload);
    }

    // Canonical merge: reassemble by input index. Every job sends exactly one
    // result (a panicking job resumed above), so each slot fills exactly once.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    for (index, value) in indexed {
        slots[index] = Some(value);
    }
    let out: Vec<T> = slots.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), total, "every job yields exactly one result");
    out
}

/// Runs tagged jobs on the pool and returns `(tag, result)` pairs in input
/// order. The tag travels *around* the pool, not through it — workers never
/// see it — so callers can attribute each result to its origin (e.g.
/// `(platform, shard)` for per-shard telemetry registries) without
/// threading identity into every job closure.
pub fn run_tagged_jobs<K, T, F>(parallelism: usize, jobs: Vec<(K, F)>) -> Vec<(K, T)>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let (tags, thunks): (Vec<K>, Vec<F>) = jobs.into_iter().unzip();
    tags.into_iter()
        .zip(run_jobs(parallelism, thunks))
        .collect()
}

/// One shard of a sharded workload: a contiguous slice of the query stream
/// with its own independently derived RNG seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Position in canonical merge order (0-based).
    pub index: usize,
    /// Number of workload items (queries) assigned to this shard.
    pub items: usize,
    /// Seed for this shard, derived as `derive_seed(base, stream, index)` —
    /// independent of every other shard's stream.
    pub seed: u64,
}

/// A deterministic decomposition of `total` workload items into shards.
///
/// The plan is a pure function of `(total, shards, base_seed, stream)`; the
/// thread count never enters, which is what makes fleet output
/// thread-count-invariant. Remainder items go to the lowest-indexed shards,
/// and shards that would receive zero items are dropped from the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Plans `total` items across at most `shards` shards (at least one).
    #[must_use]
    pub fn new(total: usize, shards: usize, base_seed: u64, stream: u64) -> Self {
        let shards = shards.max(1);
        let base_items = total / shards;
        let remainder = total % shards;
        let plan = (0..shards)
            .map(|index| Shard {
                index,
                items: base_items + usize::from(index < remainder),
                seed: derive_seed(base_seed, stream, index as u64),
            })
            .filter(|shard| shard.items > 0)
            .collect();
        ShardPlan { shards: plan }
    }

    /// The shards, in canonical merge order.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Total items across all shards.
    #[must_use]
    pub fn total_items(&self) -> usize {
        self.shards.iter().map(|s| s.items).sum()
    }

    /// Number of non-empty shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the workload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_path_preserves_order() {
        let jobs: Vec<_> = (0..10).map(|i| move || i * 2).collect();
        assert_eq!(
            run_jobs(1, jobs),
            (0..10).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_results_arrive_in_input_order() {
        for parallelism in [2, 3, 8, 64] {
            let jobs: Vec<_> = (0..37u64)
                .map(|i| {
                    move || {
                        // Skew runtimes so completion order differs from
                        // submission order.
                        if i % 5 == 0 {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        i * i
                    }
                })
                .collect();
            let got = run_jobs(parallelism, jobs);
            let want: Vec<u64> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "parallelism {parallelism}");
        }
    }

    #[test]
    fn empty_and_single_job_sets() {
        let none: Vec<fn() -> u8> = Vec::new();
        assert!(run_jobs(4, none).is_empty());
        assert_eq!(run_jobs(4, vec![|| 9u8]), vec![9]);
    }

    #[test]
    fn worker_panic_propagates() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job failed")),
            Box::new(|| 3),
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_jobs(2, jobs)));
        assert!(result.is_err(), "panic must reach the caller");
    }

    #[test]
    fn tagged_jobs_keep_tags_aligned() {
        type TaggedJob = (&'static str, fn() -> u32);
        for parallelism in [1, 4] {
            let jobs: Vec<TaggedJob> = vec![("a", || 1), ("b", || 2), ("c", || 3)];
            let got = run_tagged_jobs(parallelism, jobs);
            assert_eq!(got, vec![("a", 1), ("b", 2), ("c", 3)]);
        }
    }

    #[test]
    fn shard_plan_is_thread_count_free_and_exact() {
        for (total, shards) in [(0, 4), (1, 4), (7, 3), (300, 4), (300, 7), (5, 9)] {
            let plan = ShardPlan::new(total, shards, 0xC0FFEE, 1);
            assert_eq!(plan.total_items(), total, "total {total} shards {shards}");
            assert!(plan.len() <= shards.max(1));
            // Remainder goes to the lowest indices: sizes are non-increasing.
            let sizes: Vec<_> = plan.shards().iter().map(|s| s.items).collect();
            let mut sorted = sizes.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(sizes, sorted);
        }
    }

    #[test]
    fn shard_seeds_are_distinct_per_shard_and_stream() {
        let a = ShardPlan::new(100, 8, 11, 1);
        let b = ShardPlan::new(100, 8, 11, 2);
        let mut seeds = std::collections::HashSet::new();
        for shard in a.shards().iter().chain(b.shards()) {
            assert!(seeds.insert(shard.seed), "seed collision at {shard:?}");
        }
        // Same inputs, same plan: the decomposition is pure.
        assert_eq!(a, ShardPlan::new(100, 8, 11, 1));
    }

    #[test]
    fn sharded_fold_matches_sequential_fold() {
        // The canonical end-to-end property: running a shard plan's jobs at
        // any parallelism and folding in shard order yields the same stream.
        let plan = ShardPlan::new(64, 8, 99, 3);
        let make_jobs = || -> Vec<_> {
            plan.shards()
                .iter()
                .map(|&Shard { items, seed, .. }| {
                    move || {
                        use hsdp_rng::{Rng, StdRng};
                        let mut rng = StdRng::seed_from_u64(seed);
                        (0..items).map(|_| rng.next_u64()).collect::<Vec<u64>>()
                    }
                })
                .collect()
        };
        let sequential: Vec<u64> = run_jobs(1, make_jobs()).into_iter().flatten().collect();
        for parallelism in [2, 4, 8] {
            let parallel: Vec<u64> = run_jobs(parallelism, make_jobs())
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(parallel, sequential, "parallelism {parallelism}");
        }
    }
}
