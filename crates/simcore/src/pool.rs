//! Deterministic parallel execution: a dependency-free scoped worker pool
//! and the shard planning that keeps parallel runs byte-identical to
//! sequential ones.
//!
//! The fleet driver decomposes every platform's query stream into a fixed
//! [`ShardPlan`] — the plan depends only on the workload configuration and
//! the base seed, never on the thread count. Worker threads merely *schedule*
//! the shards; results are reassembled in canonical shard order by
//! [`run_jobs`], so a run at `parallelism = 8` folds to exactly the same
//! record stream as `parallelism = 1`.
//!
//! The pool is hand-rolled on `std::thread::scope` + a mutex-guarded job
//! queue (the workspace builds with no external dependencies and forbids
//! unsafe code), and is library code under the `panic` audit rule: it never
//! panics on its own behalf, and worker panics are propagated — not
//! swallowed — via [`std::panic::resume_unwind`].

use std::sync::{Mutex, MutexGuard, PoisonError};

use hsdp_rng::{derive_seed, Rng, StdRng};

/// Sub-stream for the dispatch-order permutation of a [`Perturbation`].
const STREAM_DISPATCH: u64 = 0xD15_0ACE;
/// Sub-stream for the completion-consumption permutation.
const STREAM_CONSUME: u64 = 0xC0_25FE;
/// Sub-stream for per-job start jitter.
const STREAM_JITTER: u64 = 0x7177E6;
/// Upper bound (exclusive) on injected per-job start jitter, microseconds.
const JITTER_SPAN_US: u64 = 180;

/// A seeded schedule-perturbation knob — the dynamic counterpart of the
/// `determinism` audit rule.
///
/// Under a perturbation the pool permutes job *dispatch* order, injects a
/// small derived start jitter per job, and permutes the order in which
/// completed results are *consumed* before the canonical reassembly. None
/// of that may change fleet output: the byte-identical invariant says
/// results depend only on the shard plan, never on the schedule. Tests (and
/// the CI smoke step) run the same workload under many perturbation seeds
/// and assert the artifacts do not move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perturbation {
    seed: u64,
}

impl Perturbation {
    /// A perturbation with the given schedule seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Perturbation { seed }
    }

    /// The schedule seed.
    #[must_use]
    pub fn seed(self) -> u64 {
        self.seed
    }

    /// Fisher–Yates-shuffles `items` with a generator derived from the
    /// perturbation seed, the sub-stream, and the slice length.
    fn shuffle<T>(self, stream: u64, items: &mut [T]) {
        let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, stream, items.len() as u64));
        for i in (1..items.len()).rev() {
            let j = rng.random_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Derived start delay for job `index` — skews worker interleavings so
    /// completion order genuinely differs between perturbation seeds.
    fn jitter(self, index: usize) -> std::time::Duration {
        let us = derive_seed(self.seed, STREAM_JITTER, index as u64) % JITTER_SPAN_US;
        std::time::Duration::from_micros(us)
    }
}

/// Locks a mutex, ignoring poisoning: the pool never mutates shared state
/// while holding the lock, so a poisoned queue is still structurally sound,
/// and the poisoning panic itself is re-raised at join time.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `jobs` on up to `parallelism` worker threads and returns their
/// results **in input order**, regardless of which worker finished first.
///
/// With `parallelism <= 1` (or at most one job) everything runs inline on
/// the calling thread — no threads are spawned, making the sequential path
/// zero-overhead and trivially identical to the parallel one.
///
/// If a job panics, the panic is propagated to the caller once all other
/// workers have drained.
pub fn run_jobs<T, F>(parallelism: usize, jobs: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    run_jobs_perturbed(parallelism, jobs, None)
}

/// [`run_jobs`] under an optional schedule perturbation.
///
/// With `Some(perturbation)` the dispatch order is a seeded permutation of
/// the input order, each job's start is delayed by a small derived jitter,
/// and completed results are consumed in a second seeded permutation before
/// the canonical index-ordered reassembly. The returned vector must be
/// identical to the unperturbed run — that is the property the determinism
/// tests drive through this knob.
pub fn run_jobs_perturbed<T, F>(
    parallelism: usize,
    jobs: Vec<F>,
    perturbation: Option<Perturbation>,
) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let total = jobs.len();
    if perturbation.is_none() && (parallelism <= 1 || total <= 1) {
        // The common sequential path stays allocation- and shuffle-free.
        return jobs.into_iter().map(|job| job()).collect();
    }

    let mut indexed_jobs: Vec<(usize, F)> = jobs.into_iter().enumerate().collect();
    if let Some(p) = perturbation {
        p.shuffle(STREAM_DISPATCH, &mut indexed_jobs);
    }

    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(total);
    if parallelism <= 1 || total <= 1 {
        // Sequential but perturbed: execute in the permuted dispatch order.
        indexed.extend(indexed_jobs.into_iter().map(|(index, job)| (index, job())));
    } else {
        let workers = parallelism.min(total);
        let queue = Mutex::new(indexed_jobs.into_iter());
        let mut panicked = None;

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            // Hold the lock only to pop; the job runs unlocked
                            // so workers overlap fully.
                            let next = lock(&queue).next();
                            match next {
                                Some((index, job)) => {
                                    if let Some(p) = perturbation {
                                        std::thread::sleep(p.jitter(index));
                                    }
                                    local.push((index, job()));
                                }
                                None => return local,
                            }
                        }
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(local) => indexed.extend(local),
                    Err(payload) => panicked = Some(payload),
                }
            }
        });
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
    }

    if let Some(p) = perturbation {
        // Consumption-order perturbation: the reassembly below must not care
        // which order completed results are visited in.
        p.shuffle(STREAM_CONSUME, &mut indexed);
    }

    // Canonical merge: reassemble by input index. Every job sends exactly one
    // result (a panicking job resumed above), so each slot fills exactly once.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    for (index, value) in indexed {
        slots[index] = Some(value);
    }
    let out: Vec<T> = slots.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), total, "every job yields exactly one result");
    out
}

/// Runs tagged jobs on the pool and returns `(tag, result)` pairs in input
/// order. The tag travels *around* the pool, not through it — workers never
/// see it — so callers can attribute each result to its origin (e.g.
/// `(platform, shard)` for per-shard telemetry registries) without
/// threading identity into every job closure.
pub fn run_tagged_jobs<K, T, F>(parallelism: usize, jobs: Vec<(K, F)>) -> Vec<(K, T)>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    run_tagged_jobs_perturbed(parallelism, jobs, None)
}

/// [`run_tagged_jobs`] under an optional schedule perturbation — see
/// [`run_jobs_perturbed`].
pub fn run_tagged_jobs_perturbed<K, T, F>(
    parallelism: usize,
    jobs: Vec<(K, F)>,
    perturbation: Option<Perturbation>,
) -> Vec<(K, T)>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let (tags, thunks): (Vec<K>, Vec<F>) = jobs.into_iter().unzip();
    tags.into_iter()
        .zip(run_jobs_perturbed(parallelism, thunks, perturbation))
        .collect()
}

/// One shard of a sharded workload: a contiguous slice of the query stream
/// with its own independently derived RNG seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Position in canonical merge order (0-based).
    pub index: usize,
    /// Number of workload items (queries) assigned to this shard.
    pub items: usize,
    /// Seed for this shard, derived as `derive_seed(base, stream, index)` —
    /// independent of every other shard's stream.
    pub seed: u64,
}

/// A deterministic decomposition of `total` workload items into shards.
///
/// The plan is a pure function of `(total, shards, base_seed, stream)`; the
/// thread count never enters, which is what makes fleet output
/// thread-count-invariant. Remainder items go to the lowest-indexed shards,
/// and shards that would receive zero items are dropped from the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Derives an independent seed for sub-shard part `part` in phase
    /// `phase` — the seed discipline shard plans use ([`Shard::seed`]),
    /// exposed for callers that decompose a shard further (e.g. per-tablet
    /// LSM jobs) and need the same purity guarantee: the seed is a function
    /// of `(base, part, phase)` only, never of the schedule.
    #[must_use]
    pub fn derive_seed(base: u64, part: u64, phase: u64) -> u64 {
        derive_seed(base, phase, part)
    }

    /// Plans `total` items across at most `shards` shards (at least one).
    #[must_use]
    pub fn new(total: usize, shards: usize, base_seed: u64, stream: u64) -> Self {
        let shards = shards.max(1);
        let base_items = total / shards;
        let remainder = total % shards;
        let plan = (0..shards)
            .map(|index| Shard {
                index,
                items: base_items + usize::from(index < remainder),
                seed: derive_seed(base_seed, stream, index as u64),
            })
            .filter(|shard| shard.items > 0)
            .collect();
        ShardPlan { shards: plan }
    }

    /// The shards, in canonical merge order.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Total items across all shards.
    #[must_use]
    pub fn total_items(&self) -> usize {
        self.shards.iter().map(|s| s.items).sum()
    }

    /// Number of non-empty shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the workload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_path_preserves_order() {
        let jobs: Vec<_> = (0..10).map(|i| move || i * 2).collect();
        assert_eq!(
            run_jobs(1, jobs),
            (0..10).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_results_arrive_in_input_order() {
        for parallelism in [2, 3, 8, 64] {
            let jobs: Vec<_> = (0..37u64)
                .map(|i| {
                    move || {
                        // Skew runtimes so completion order differs from
                        // submission order.
                        if i % 5 == 0 {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        i * i
                    }
                })
                .collect();
            let got = run_jobs(parallelism, jobs);
            let want: Vec<u64> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "parallelism {parallelism}");
        }
    }

    #[test]
    fn empty_and_single_job_sets() {
        let none: Vec<fn() -> u8> = Vec::new();
        assert!(run_jobs(4, none).is_empty());
        assert_eq!(run_jobs(4, vec![|| 9u8]), vec![9]);
    }

    #[test]
    fn worker_panic_propagates() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job failed")),
            Box::new(|| 3),
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_jobs(2, jobs)));
        assert!(result.is_err(), "panic must reach the caller");
    }

    #[test]
    fn tagged_jobs_keep_tags_aligned() {
        type TaggedJob = (&'static str, fn() -> u32);
        for parallelism in [1, 4] {
            let jobs: Vec<TaggedJob> = vec![("a", || 1), ("b", || 2), ("c", || 3)];
            let got = run_tagged_jobs(parallelism, jobs);
            assert_eq!(got, vec![("a", 1), ("b", 2), ("c", 3)]);
        }
    }

    #[test]
    fn perturbed_schedules_return_identical_results() {
        let make_jobs = || -> Vec<_> {
            (0..23u64)
                .map(|i| {
                    move || {
                        if i % 4 == 0 {
                            std::thread::sleep(std::time::Duration::from_micros(150));
                        }
                        i.wrapping_mul(0x9E37_79B9).rotate_left(13)
                    }
                })
                .collect()
        };
        let baseline = run_jobs(1, make_jobs());
        for parallelism in [1, 4] {
            for seed in 0..6u64 {
                let got =
                    run_jobs_perturbed(parallelism, make_jobs(), Some(Perturbation::new(seed)));
                assert_eq!(got, baseline, "parallelism {parallelism} seed {seed}");
            }
        }
    }

    #[test]
    fn perturbation_actually_changes_dispatch_order() {
        // Guard against the knob silently becoming a no-op: record the order
        // jobs *start* in under a perturbed sequential run.
        let order = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..16usize)
            .map(|i| {
                let order = &order;
                move || lock(order).push(i)
            })
            .collect();
        run_jobs_perturbed(1, jobs, Some(Perturbation::new(7)));
        let started = lock(&order).clone();
        let canonical: Vec<usize> = (0..16).collect();
        assert_eq!(started.len(), 16);
        assert_ne!(started, canonical, "dispatch order must be permuted");
    }

    #[test]
    fn perturbed_tagged_jobs_keep_tags_aligned() {
        type TaggedJob = (&'static str, fn() -> u32);
        let jobs: Vec<TaggedJob> = vec![("a", || 1), ("b", || 2), ("c", || 3), ("d", || 4)];
        let got = run_tagged_jobs_perturbed(4, jobs, Some(Perturbation::new(3)));
        assert_eq!(got, vec![("a", 1), ("b", 2), ("c", 3), ("d", 4)]);
    }

    #[test]
    fn perturbation_is_a_pure_function_of_its_seed() {
        let p = Perturbation::new(42);
        assert_eq!(p, Perturbation::new(42));
        assert_eq!(p.seed(), 42);
        let mut a: Vec<usize> = (0..32).collect();
        let mut b: Vec<usize> = (0..32).collect();
        p.shuffle(STREAM_DISPATCH, &mut a);
        Perturbation::new(42).shuffle(STREAM_DISPATCH, &mut b);
        assert_eq!(a, b, "same seed, same permutation");
        let mut c: Vec<usize> = (0..32).collect();
        Perturbation::new(43).shuffle(STREAM_DISPATCH, &mut c);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn shard_plan_is_thread_count_free_and_exact() {
        for (total, shards) in [(0, 4), (1, 4), (7, 3), (300, 4), (300, 7), (5, 9)] {
            let plan = ShardPlan::new(total, shards, 0xC0FFEE, 1);
            assert_eq!(plan.total_items(), total, "total {total} shards {shards}");
            assert!(plan.len() <= shards.max(1));
            // Remainder goes to the lowest indices: sizes are non-increasing.
            let sizes: Vec<_> = plan.shards().iter().map(|s| s.items).collect();
            let mut sorted = sizes.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(sizes, sorted);
        }
    }

    #[test]
    fn shard_seeds_are_distinct_per_shard_and_stream() {
        let a = ShardPlan::new(100, 8, 11, 1);
        let b = ShardPlan::new(100, 8, 11, 2);
        let mut seeds = std::collections::HashSet::new();
        for shard in a.shards().iter().chain(b.shards()) {
            assert!(seeds.insert(shard.seed), "seed collision at {shard:?}");
        }
        // Same inputs, same plan: the decomposition is pure.
        assert_eq!(a, ShardPlan::new(100, 8, 11, 1));
    }

    #[test]
    fn derive_seed_is_pure_and_collision_free_across_parts() {
        let mut seeds = std::collections::HashSet::new();
        for phase in [1u64, 2, 0x7AB_1E7] {
            for part in 0..16u64 {
                let seed = ShardPlan::derive_seed(0xC0FFEE, part, phase);
                assert_eq!(seed, ShardPlan::derive_seed(0xC0FFEE, part, phase));
                assert!(seeds.insert(seed), "collision at part {part} phase {phase}");
            }
        }
    }

    #[test]
    fn sharded_fold_matches_sequential_fold() {
        // The canonical end-to-end property: running a shard plan's jobs at
        // any parallelism and folding in shard order yields the same stream.
        let plan = ShardPlan::new(64, 8, 99, 3);
        let make_jobs = || -> Vec<_> {
            plan.shards()
                .iter()
                .map(|&Shard { items, seed, .. }| {
                    move || {
                        use hsdp_rng::{Rng, StdRng};
                        let mut rng = StdRng::seed_from_u64(seed);
                        (0..items).map(|_| rng.next_u64()).collect::<Vec<u64>>()
                    }
                })
                .collect()
        };
        let sequential: Vec<u64> = run_jobs(1, make_jobs()).into_iter().flatten().collect();
        for parallelism in [2, 4, 8] {
            let parallel: Vec<u64> = run_jobs(parallelism, make_jobs())
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(parallel, sequential, "parallelism {parallelism}");
        }
    }
}
