//! # hsdp-simcore
//!
//! A deterministic discrete-event simulation core used by every simulated
//! substrate in the workspace:
//!
//! - [`time`] — nanosecond [`time::SimTime`] / [`time::SimDuration`].
//! - [`engine`] — the event loop ([`engine::Simulator`]).
//! - [`resource`] — FIFO multi-server queueing timelines.
//! - [`dist`] — zipf / exponential / pareto / log-normal sampling, from
//!   scratch.
//! - [`stats`] — streaming summaries and percentile collectors.
//! - [`pool`] — a scoped worker pool plus deterministic shard planning for
//!   thread-count-invariant parallel runs.
//!
//! The platform simulators (`hsdp-platforms`) schedule RPCs, storage
//! accesses, consensus rounds, compactions and shuffles through this engine,
//! giving the profiling pipeline deterministic, reproducible traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dist;
pub mod engine;
pub mod pool;
pub mod resource;
pub mod stats;
pub mod time;

pub use dist::{
    seeded_rng, BoundedPareto, Constant, Exponential, LogNormal, Sample, Uniform, Zipf,
};
pub use engine::Simulator;
pub use pool::{run_jobs, Shard, ShardPlan};
pub use resource::{FifoResource, Grant};
pub use stats::{Percentiles, Summary};
pub use time::{SimDuration, SimTime};
