//! A deterministic discrete-event simulation engine.
//!
//! Events are user-defined payloads scheduled at simulated instants; the
//! engine pops them in time order (FIFO among ties) and hands them to a
//! handler, which may schedule further events. Determinism is guaranteed by
//! a monotonically increasing tie-break sequence number.
//!
//! # Examples
//!
//! ```
//! use hsdp_simcore::engine::Simulator;
//! use hsdp_simcore::time::SimDuration;
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim = Simulator::new();
//! sim.schedule(SimDuration::from_micros(5), Ev::Ping(0));
//! let mut seen = Vec::new();
//! sim.run(|sim, ev| {
//!     let Ev::Ping(n) = ev;
//!     seen.push((sim.now().as_nanos(), n));
//!     if n < 2 {
//!         sim.schedule(SimDuration::from_micros(5), Ev::Ping(n + 1));
//!     }
//! });
//! assert_eq!(seen, vec![(5_000, 0), (10_000, 1), (15_000, 2)]);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// One pending event.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

/// A discrete-event simulator over user-defined events of type `E`.
#[derive(Debug)]
pub struct Simulator<E> {
    now: SimTime,
    next_seq: u64,
    processed: u64,
    queue: BinaryHeap<Reverse<HeapEntry<E>>>,
}

#[derive(Debug)]
struct HeapEntry<E>(Scheduled<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.at, self.0.seq).cmp(&(other.0.at, other.0.seq))
    }
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// A simulator at time zero with an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at an absolute instant. Instants in the past fire
    /// at the current time (time never goes backwards).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue
            .push(Reverse(HeapEntry(Scheduled { at, seq, event })));
    }

    /// Pops the next event, advancing the clock to its instant.
    pub fn step(&mut self) -> Option<E> {
        let Reverse(HeapEntry(scheduled)) = self.queue.pop()?;
        debug_assert!(scheduled.at >= self.now, "time must be monotone");
        self.now = scheduled.at;
        self.processed += 1;
        Some(scheduled.event)
    }

    /// Runs until the queue drains, invoking `handler` for each event.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Simulator<E>, E),
    {
        while let Some(event) = self.step() {
            handler(self, event);
        }
    }

    /// Runs until the queue drains or the clock passes `deadline`.
    ///
    /// Events scheduled after `deadline` remain queued.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F)
    where
        F: FnMut(&mut Simulator<E>, E),
    {
        while let Some(Reverse(HeapEntry(next))) = self.queue.peek() {
            if next.at > deadline {
                break;
            }
            // audit: allow(panic, peek() just returned Some so step() cannot fail)
            let event = self.step().expect("peeked entry exists");
            handler(self, event);
        }
        self.now = self.now.max(deadline.min(self.now + SimDuration::ZERO));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Tick(u32);

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule(SimDuration::from_nanos(30), Tick(3));
        sim.schedule(SimDuration::from_nanos(10), Tick(1));
        sim.schedule(SimDuration::from_nanos(20), Tick(2));
        let mut order = Vec::new();
        sim.run(|_, Tick(n)| order.push(n));
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(sim.processed(), 3);
        assert_eq!(sim.now().as_nanos(), 30);
    }

    #[test]
    fn ties_are_fifo() {
        let mut sim = Simulator::new();
        for i in 0..10 {
            sim.schedule(SimDuration::from_nanos(5), Tick(i));
        }
        let mut order = Vec::new();
        sim.run(|_, Tick(n)| order.push(n));
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut sim = Simulator::new();
        sim.schedule(SimDuration::from_nanos(1), Tick(0));
        let mut count = 0;
        sim.run(|sim, Tick(n)| {
            count += 1;
            if n < 99 {
                sim.schedule(SimDuration::from_nanos(1), Tick(n + 1));
            }
        });
        assert_eq!(count, 100);
        assert_eq!(sim.now().as_nanos(), 100);
    }

    #[test]
    fn past_events_fire_now_not_before() {
        let mut sim = Simulator::new();
        sim.schedule(SimDuration::from_nanos(100), Tick(0));
        let mut times = Vec::new();
        sim.run(|sim, Tick(n)| {
            times.push(sim.now().as_nanos());
            if n == 0 {
                // Scheduling "in the past" clamps to now.
                sim.schedule_at(SimTime::ZERO, Tick(1));
            }
        });
        assert_eq!(times, vec![100, 100]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new();
        for i in 1..=10 {
            sim.schedule(SimDuration::from_nanos(i * 10), Tick(i as u32));
        }
        let mut seen = 0;
        sim.run_until(SimTime::from_nanos(50), |_, _| seen += 1);
        assert_eq!(seen, 5);
        assert_eq!(sim.pending(), 5);
        // Resume to drain the rest.
        sim.run(|_, _| seen += 1);
        assert_eq!(seen, 10);
    }

    #[test]
    fn empty_simulator_is_inert() {
        let mut sim: Simulator<Tick> = Simulator::new();
        assert!(sim.step().is_none());
        sim.run(|_, _| panic!("no events"));
        assert_eq!(sim.processed(), 0);
    }
}
