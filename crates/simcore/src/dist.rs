//! Sampling distributions for workload generation, implemented from scratch
//! (the approved dependency set has no `rand_distr`).
//!
//! Includes the zipfian popularity distribution hyperscale key-value traces
//! exhibit (YCSB-style), plus exponential, bounded Pareto, and log-normal
//! service-time distributions.

use hsdp_rng::Rng;

/// A sampling distribution over `f64`.
pub trait Sample {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// A fixed value (degenerate distribution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Sample for Constant {
    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> f64 {
        self.0
    }
}

/// Uniform over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and both are finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "need lo < hi");
        Uniform { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * rng.random::<f64>()
    }
}

/// Exponential with the given mean (inverse-transform sampling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is positive and finite.
    #[must_use]
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Exponential { mean }
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u in (0, 1]: avoid ln(0).
        let u = 1.0 - rng.random::<f64>();
        -self.mean * u.ln()
    }
}

/// Bounded Pareto over `[lo, hi]` with shape `alpha` — the heavy-tailed
/// service times behind datacenter tail latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(
            lo > 0.0 && hi > lo && alpha > 0.0,
            "need 0 < lo < hi, alpha > 0"
        );
        BoundedPareto { lo, hi, alpha }
    }
}

impl Sample for BoundedPareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.random::<f64>();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

/// Log-normal given the mean and sigma of the underlying normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution (`exp(N(mu, sigma))`).
    ///
    /// # Panics
    ///
    /// Panics unless `sigma` is non-negative and both are finite.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller.
        let u1: f64 = (1.0 - rng.random::<f64>()).max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Zipfian distribution over ranks `0..n` (rank 0 most popular), using the
/// Gray et al. / YCSB constant-time generator.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: u64,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// A zipfian over `n` items with skew `theta` in `(0, 1)`.
    ///
    /// YCSB's default skew is 0.99. Construction is `O(n)` (computes the
    /// generalized harmonic number exactly).
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 1` and `theta ∈ (0, 1)`.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "need at least one item");
        assert!(
            (0.0..1.0).contains(&theta) && theta > 0.0,
            "theta must be in (0, 1)"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            zetan,
            alpha,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items.
    #[must_use]
    pub fn items(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `0..n`, 0 being the most popular.
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

impl Sample for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// Convenience: a deterministic RNG for reproducible simulations.
#[must_use]
pub fn seeded_rng(seed: u64) -> hsdp_rng::StdRng {
    hsdp_rng::StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(dist: &impl Sample, n: usize, seed: u64) -> f64 {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        assert!((mean_of(&Constant(4.2), 10, 1) - 4.2).abs() < 1e-12);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 4.0);
        let mut rng = seeded_rng(7);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        let m = mean_of(&d, 20_000, 7);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(5.0);
        let m = mean_of(&d, 50_000, 11);
        assert!((m - 5.0).abs() < 0.2, "mean {m}");
        let mut rng = seeded_rng(11);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto::new(1.0, 1000.0, 1.1);
        let mut rng = seeded_rng(13);
        let mut saw_tail = false;
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=1000.0 + 1e-9).contains(&x), "{x}");
            if x > 100.0 {
                saw_tail = true;
            }
        }
        assert!(saw_tail, "heavy tail should produce large values");
    }

    #[test]
    fn log_normal_positive_and_skewed() {
        let d = LogNormal::new(0.0, 1.0);
        let mut rng = seeded_rng(17);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        // Log-normal: mean (e^0.5 ~ 1.65) well above median (~1.0).
        assert!(mean > median * 1.3, "mean {mean} median {median}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let d = Zipf::new(1000, 0.99);
        let mut rng = seeded_rng(19);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            let r = d.sample_rank(&mut rng);
            assert!(r < 1000);
            counts[r as usize] += 1;
        }
        // Rank 0 dominates and frequencies decay.
        assert!(counts[0] > counts[9] && counts[0] > 10 * counts[500].max(1));
        // Top 10 ranks account for a large share under theta=0.99.
        let top10: u32 = counts[..10].iter().sum();
        assert!(top10 > 30_000, "top10 {top10}");
    }

    #[test]
    fn zipf_single_item() {
        let d = Zipf::new(1, 0.5);
        let mut rng = seeded_rng(23);
        assert_eq!(d.sample_rank(&mut rng), 0);
        assert_eq!(d.items(), 1);
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let d = Exponential::new(1.0);
        let a: Vec<f64> = {
            let mut rng = seeded_rng(42);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = seeded_rng(42);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
