//! Queueing resources: FIFO multi-server timelines.
//!
//! A [`FifoResource`] models a station with `k` identical servers (CPU
//! cores, disk channels, network links). Jobs are offered in arrival order;
//! each is assigned to the earliest-free server, yielding deterministic
//! queueing delays without event-driven bookkeeping.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// The outcome of offering a job to a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service began (>= arrival).
    pub start: SimTime,
    /// When service completed.
    pub finish: SimTime,
    /// How long the job waited in queue.
    pub queued: SimDuration,
}

/// A FIFO station with a fixed number of identical servers.
#[derive(Debug, Clone)]
pub struct FifoResource {
    /// Earliest time each server becomes free (min-heap).
    free_at: BinaryHeap<Reverse<SimTime>>,
    busy: SimDuration,
    jobs: u64,
    queued_total: SimDuration,
}

impl FifoResource {
    /// A resource with `servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    #[must_use]
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a resource needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        FifoResource {
            free_at,
            busy: SimDuration::ZERO,
            jobs: 0,
            queued_total: SimDuration::ZERO,
        }
    }

    /// Number of servers.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Offers a job arriving at `arrival` needing `service` time; returns
    /// when it starts and finishes. Jobs must be offered in arrival order
    /// for FIFO semantics.
    pub fn offer(&mut self, arrival: SimTime, service: SimDuration) -> Grant {
        // audit: allow(panic, the heap is seeded with `servers` entries and every pop is paired with a push)
        let Reverse(free) = self.free_at.pop().expect("heap has `servers` entries");
        let start = free.max(arrival);
        let finish = start + service;
        self.free_at.push(Reverse(finish));
        self.busy += service;
        self.jobs += 1;
        let queued = start.since(arrival);
        self.queued_total += queued;
        Grant {
            start,
            finish,
            queued,
        }
    }

    /// Total service time delivered.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Jobs served.
    #[must_use]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Mean queueing delay across jobs served (zero if none).
    #[must_use]
    pub fn mean_queue_delay(&self) -> SimDuration {
        self.queued_total
            .as_nanos()
            .checked_div(self.jobs)
            .map_or(SimDuration::ZERO, SimDuration::from_nanos)
    }

    /// The earliest instant all servers are idle.
    #[must_use]
    pub fn drained_at(&self) -> SimTime {
        self.free_at
            .iter()
            .map(|Reverse(t)| *t)
            .fold(SimTime::ZERO, SimTime::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }
    fn d(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    #[test]
    fn single_server_serializes() {
        let mut r = FifoResource::new(1);
        let g1 = r.offer(t(0), d(10));
        let g2 = r.offer(t(0), d(10));
        assert_eq!(g1.start, t(0));
        assert_eq!(g1.finish, t(10));
        assert_eq!(g2.start, t(10));
        assert_eq!(g2.finish, t(20));
        assert_eq!(g2.queued, d(10));
        assert_eq!(r.mean_queue_delay(), d(5));
    }

    #[test]
    fn idle_gap_no_queueing() {
        let mut r = FifoResource::new(1);
        r.offer(t(0), d(10));
        let g = r.offer(t(50), d(5));
        assert_eq!(g.start, t(50));
        assert_eq!(g.queued, d(0));
        assert_eq!(r.drained_at(), t(55));
    }

    #[test]
    fn multi_server_parallelism() {
        let mut r = FifoResource::new(3);
        let grants: Vec<Grant> = (0..3).map(|_| r.offer(t(0), d(100))).collect();
        for g in &grants {
            assert_eq!(g.start, t(0), "all three run immediately");
        }
        let g4 = r.offer(t(0), d(100));
        assert_eq!(g4.start, t(100), "fourth job waits for a server");
        assert_eq!(r.jobs(), 4);
        assert_eq!(r.busy_time(), d(400));
    }

    #[test]
    fn earliest_free_server_wins() {
        let mut r = FifoResource::new(2);
        r.offer(t(0), d(100)); // server A busy until 100
        r.offer(t(0), d(10)); // server B busy until 10
        let g = r.offer(t(20), d(5));
        assert_eq!(g.start, t(20), "server B is free at 10 < 20");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = FifoResource::new(0);
    }
}
