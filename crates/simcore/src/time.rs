//! Simulated time: nanosecond-resolution instants and durations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant `nanos` nanoseconds after the epoch.
    #[must_use]
    pub fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// The duration since an earlier instant (saturating at zero).
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    #[must_use]
    pub fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// From microseconds.
    #[must_use]
    pub fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(1_000))
    }

    /// From milliseconds.
    #[must_use]
    pub fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000_000))
    }

    /// From (non-negative, finite) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or infinite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (rounded down).
    #[must_use]
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Scales by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn scaled(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// True if zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Saturating subtraction.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "0ns")
        } else if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_nanos(1234).as_micros(), 1);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_micros(10);
        assert_eq!(t1.as_nanos(), 10_000);
        assert_eq!(t1.since(t0), SimDuration::from_micros(10));
        assert_eq!(t0.since(t1), SimDuration::ZERO, "saturating");
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(100);
        let b = SimDuration::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((b - a).as_nanos(), 0, "saturating");
        assert_eq!(a.scaled(2.5).as_nanos(), 250);
        let total: SimDuration = [a, b].into_iter().sum();
        assert_eq!(total.as_nanos(), 140);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.0us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.0ms");
        assert_eq!(SimDuration::from_secs_f64(5.0).to_string(), "5.000s");
        assert_eq!(SimDuration::ZERO.to_string(), "0ns");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
