//! Dapper-style trace spans.
//!
//! The paper profiles Spanner and BigTable "using Dapper, an internal RPC
//! trace logging system that measures and traces RPCs between production
//! services" (Section 4.1). A [`Span`] is one timed operation within a
//! trace; spans form a tree via parent ids and carry a [`SpanKind`] that
//! drives the end-to-end time decomposition.

use hsdp_core::request::RequestId;
use hsdp_simcore::time::{SimDuration, SimTime};

/// Identifies one end-to-end request (query) across all services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// What kind of work a span represents — the categories of the Section 4
/// end-to-end breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// Local CPU computation.
    Cpu,
    /// Distributed-storage IO (DFS reads/writes, cache fills).
    Io,
    /// Waiting on remote workers: consensus, compaction, shuffle.
    RemoteWork,
    /// Structural/root spans that merely contain others.
    Container,
}

impl SpanKind {
    /// The attribution priority of Section 4.1: overlapped time is
    /// categorized "first into remote work, then IO, then CPU time".
    /// Higher wins.
    #[must_use]
    pub fn priority(self) -> u8 {
        match self {
            SpanKind::RemoteWork => 3,
            SpanKind::Io => 2,
            SpanKind::Cpu => 1,
            SpanKind::Container => 0,
        }
    }
}

/// One timed operation in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// Parent span, if any (`None` for the root).
    pub parent: Option<SpanId>,
    /// Operation name (e.g. `"spanner.commit"`).
    pub name: String,
    /// Work category.
    pub kind: SpanKind,
    /// Start instant.
    pub start: SimTime,
    /// End instant (>= start).
    pub end: SimTime,
    /// The traffic request this span serves ([`RequestId::UNTAGGED`] for
    /// background work; stamped by the platform at query finish).
    pub request: RequestId,
}

impl Span {
    /// The span's duration.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_matches_paper_rule() {
        assert!(SpanKind::RemoteWork.priority() > SpanKind::Io.priority());
        assert!(SpanKind::Io.priority() > SpanKind::Cpu.priority());
        assert!(SpanKind::Cpu.priority() > SpanKind::Container.priority());
    }

    #[test]
    fn duration_saturates() {
        let span = Span {
            trace: TraceId(1),
            id: SpanId(1),
            parent: None,
            name: "x".into(),
            kind: SpanKind::Cpu,
            start: SimTime::from_nanos(100),
            end: SimTime::from_nanos(40),
            request: RequestId::UNTAGGED,
        };
        assert_eq!(span.duration(), SimDuration::ZERO);
    }
}
