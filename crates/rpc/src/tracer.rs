//! The trace collector: allocates ids, records spans, groups them by trace.

use std::collections::BTreeMap;

use hsdp_core::request::RequestId;
use hsdp_simcore::time::SimTime;

use crate::span::{Span, SpanId, SpanKind, TraceId};

/// A handle to an open (started but unfinished) span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenSpan {
    trace: TraceId,
    id: SpanId,
}

impl OpenSpan {
    /// The span's id (usable as a parent for children).
    #[must_use]
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// The trace id.
    #[must_use]
    pub fn trace(&self) -> TraceId {
        self.trace
    }
}

/// Collects spans from the simulated platforms.
#[derive(Debug, Default)]
pub struct Tracer {
    next_trace: u64,
    next_span: u64,
    open: BTreeMap<SpanId, Span>,
    finished: Vec<Span>,
}

impl Tracer {
    /// An empty tracer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh trace id (one per query).
    pub fn new_trace(&mut self) -> TraceId {
        self.next_trace += 1;
        TraceId(self.next_trace)
    }

    /// Starts a span.
    pub fn start(
        &mut self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &str,
        kind: SpanKind,
        now: SimTime,
    ) -> OpenSpan {
        self.next_span += 1;
        let id = SpanId(self.next_span);
        self.open.insert(
            id,
            Span {
                trace,
                id,
                parent,
                name: name.to_owned(),
                kind,
                start: now,
                end: now,
                request: RequestId::UNTAGGED,
            },
        );
        OpenSpan { trace, id }
    }

    /// Finishes an open span at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the span was already finished (double-finish is a tracer
    /// bug in the caller).
    pub fn finish(&mut self, open: OpenSpan, now: SimTime) {
        let mut span = self
            .open
            .remove(&open.id)
            // audit: allow(panic, documented panic contract: double-finish is a tracer bug in the caller)
            .expect("span finished twice or never started");
        span.end = now.max(span.start);
        self.finished.push(span);
    }

    /// Records an already-timed span in one call.
    pub fn record(
        &mut self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &str,
        kind: SpanKind,
        start: SimTime,
        end: SimTime,
    ) -> SpanId {
        self.next_span += 1;
        let id = SpanId(self.next_span);
        self.finished.push(Span {
            trace,
            id,
            parent,
            name: name.to_owned(),
            kind,
            start,
            end: end.max(start),
            request: RequestId::UNTAGGED,
        });
        id
    }

    /// All finished spans, in completion order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.finished
    }

    /// Finished spans of one trace, in start order.
    #[must_use]
    pub fn trace_spans(&self, trace: TraceId) -> Vec<&Span> {
        let mut spans: Vec<&Span> = self.finished.iter().filter(|s| s.trace == trace).collect();
        spans.sort_by_key(|s| (s.start, s.id));
        spans
    }

    /// The distinct traces recorded, in id order.
    #[must_use]
    pub fn traces(&self) -> Vec<TraceId> {
        let mut ids: Vec<TraceId> = self.finished.iter().map(|s| s.trace).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of spans still open (should be zero after a query completes).
    #[must_use]
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Drains all finished spans, leaving the tracer empty for reuse.
    ///
    /// Draining while spans are still open would orphan them: the open
    /// span finishes into a *later* batch, severed from the children just
    /// taken, and every downstream consumer (decomposition, export,
    /// critical path) would see a broken tree. Debug builds assert there
    /// are no open spans; callers must finish every span first and should
    /// check [`Tracer::open_count`] is zero at end-of-run.
    pub fn take_spans(&mut self) -> Vec<Span> {
        debug_assert!(
            self.open.is_empty(),
            "take_spans with {} span(s) still open would orphan them from their children",
            self.open.len()
        );
        std::mem::take(&mut self.finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsdp_simcore::time::SimDuration;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn start_finish_lifecycle() {
        let mut tracer = Tracer::new();
        let trace = tracer.new_trace();
        let root = tracer.start(trace, None, "query", SpanKind::Container, t(0));
        let child = tracer.start(trace, Some(root.id()), "read", SpanKind::Io, t(10));
        assert_eq!(tracer.open_count(), 2);
        tracer.finish(child, t(50));
        tracer.finish(root, t(60));
        assert_eq!(tracer.open_count(), 0);
        let spans = tracer.trace_spans(trace);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "query");
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[1].duration(), SimDuration::from_nanos(40));
    }

    #[test]
    fn traces_are_distinct() {
        let mut tracer = Tracer::new();
        let t1 = tracer.new_trace();
        let t2 = tracer.new_trace();
        assert_ne!(t1, t2);
        tracer.record(t1, None, "a", SpanKind::Cpu, t(0), t(5));
        tracer.record(t2, None, "b", SpanKind::Cpu, t(0), t(5));
        assert_eq!(tracer.traces(), vec![t1, t2]);
        assert_eq!(tracer.trace_spans(t1).len(), 1);
    }

    #[test]
    fn record_clamps_inverted_times() {
        let mut tracer = Tracer::new();
        let trace = tracer.new_trace();
        tracer.record(trace, None, "x", SpanKind::Cpu, t(100), t(50));
        assert_eq!(tracer.spans()[0].duration(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finished twice")]
    fn double_finish_panics() {
        let mut tracer = Tracer::new();
        let trace = tracer.new_trace();
        let span = tracer.start(trace, None, "x", SpanKind::Cpu, t(0));
        tracer.finish(span, t(1));
        tracer.finish(span, t(2));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "still open"))]
    fn take_spans_with_open_span_is_a_bug() {
        let mut tracer = Tracer::new();
        let trace = tracer.new_trace();
        let open = tracer.start(trace, None, "orphan", SpanKind::Container, t(0));
        tracer.record(trace, Some(open.id()), "child", SpanKind::Cpu, t(1), t(2));
        // Draining now would sever `child` from its still-open parent.
        let taken = tracer.take_spans();
        // Release builds skip the assertion; the drain still happens.
        assert_eq!(taken.len(), 1);
        tracer.finish(open, t(3));
    }

    #[test]
    fn take_spans_resets() {
        let mut tracer = Tracer::new();
        let trace = tracer.new_trace();
        tracer.record(trace, None, "x", SpanKind::Cpu, t(0), t(1));
        let taken = tracer.take_spans();
        assert_eq!(taken.len(), 1);
        assert!(tracer.spans().is_empty());
    }
}
