//! # hsdp-rpc
//!
//! Dapper-style RPC tracing for the simulated platforms (Section 4.1 of the
//! paper):
//!
//! - [`span`] — traces, spans, and the CPU / IO / remote-work span kinds.
//! - [`tracer`] — the span collector.
//! - [`decompose`](mod@decompose) — trace → end-to-end time breakdown, implementing the
//!   paper's overlap-attribution rule (remote work ≻ IO ≻ CPU) plus a
//!   proportional ablation variant.
//! - [`latency`] — intra-cluster and cross-region RPC latency models with
//!   deterministic jitter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod decompose;
pub mod latency;
pub mod span;
pub mod tracer;

pub use decompose::{decompose, decompose_proportional, Attribution, E2eDecomposition};
pub use latency::LatencyModel;
pub use span::{Span, SpanId, SpanKind, TraceId};
pub use tracer::{OpenSpan, Tracer};
