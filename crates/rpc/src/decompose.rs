//! Trace decomposition: turning a span tree into the end-to-end time
//! breakdown of Section 4.
//!
//! The paper's methodology: "we categorized overlapped time first into
//! remote work, then IO, then CPU time, assuming that CPU time was blocked
//! on remote work and IO". [`decompose`] implements exactly that rule with
//! an interval sweep; [`decompose_proportional`] is the ablation variant
//! that splits overlapped time evenly among the active categories.

use hsdp_simcore::time::{SimDuration, SimTime};

use crate::span::{Span, SpanKind};

/// The end-to-end breakdown of one trace.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct E2eDecomposition {
    /// Time attributed to local CPU.
    pub cpu: SimDuration,
    /// Time attributed to distributed-storage IO.
    pub io: SimDuration,
    /// Time attributed to remote work.
    pub remote: SimDuration,
    /// Wall-clock end-to-end time (first start to last end).
    pub end_to_end: SimDuration,
    /// End-to-end time in which no categorized span was active.
    pub idle: SimDuration,
}

impl E2eDecomposition {
    /// Share of end-to-end time on CPU (0 for empty traces).
    #[must_use]
    pub fn cpu_share(&self) -> f64 {
        share(self.cpu, self.end_to_end)
    }

    /// Share on IO.
    #[must_use]
    pub fn io_share(&self) -> f64 {
        share(self.io, self.end_to_end)
    }

    /// Share on remote work.
    #[must_use]
    pub fn remote_share(&self) -> f64 {
        share(self.remote, self.end_to_end)
    }
}

fn share(part: SimDuration, whole: SimDuration) -> f64 {
    if whole.is_zero() {
        0.0
    } else {
        // audit: allow(cast, nanosecond counts to f64 for a dimensionless ratio; exact below 2^53 ns)
        part.as_nanos() as f64 / whole.as_nanos() as f64
    }
}

/// How overlapped time is attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Attribution {
    /// The paper's rule: remote work ≻ IO ≻ CPU.
    #[default]
    Priority,
    /// Split evenly among active categories (ablation).
    Proportional,
}

/// Decomposes a trace with the paper's priority rule.
#[must_use]
pub fn decompose(spans: &[Span]) -> E2eDecomposition {
    decompose_with(spans, Attribution::Priority)
}

/// Decomposes a trace splitting overlap evenly (ablation variant).
#[must_use]
pub fn decompose_proportional(spans: &[Span]) -> E2eDecomposition {
    decompose_with(spans, Attribution::Proportional)
}

/// Decomposes a trace with the chosen attribution rule.
#[must_use]
pub fn decompose_with(spans: &[Span], attribution: Attribution) -> E2eDecomposition {
    let categorized: Vec<&Span> = spans
        .iter()
        .filter(|s| s.kind != SpanKind::Container && !s.duration().is_zero())
        .collect();
    // End-to-end wall clock spans *all* spans including containers.
    let first_start = spans.iter().map(|s| s.start).min();
    let last_end = spans.iter().map(|s| s.end).max();
    let (Some(first), Some(last)) = (first_start, last_end) else {
        return E2eDecomposition::default();
    };
    let end_to_end = last.since(first);

    // Elementary-interval sweep over all categorized span boundaries.
    let mut boundaries: Vec<SimTime> = categorized.iter().flat_map(|s| [s.start, s.end]).collect();
    boundaries.sort_unstable();
    boundaries.dedup();

    let mut cpu = 0f64;
    let mut io = 0f64;
    let mut remote = 0f64;
    let mut covered = 0u64;

    for window in boundaries.windows(2) {
        let (lo, hi) = (window[0], window[1]);
        let width = hi.since(lo).as_nanos();
        if width == 0 {
            continue;
        }
        let mut active = [false; 3]; // [cpu, io, remote]
        for span in &categorized {
            if span.start <= lo && span.end >= hi {
                match span.kind {
                    SpanKind::Cpu => active[0] = true,
                    SpanKind::Io => active[1] = true,
                    SpanKind::RemoteWork => active[2] = true,
                    SpanKind::Container => {}
                }
            }
        }
        if !(active[0] || active[1] || active[2]) {
            continue;
        }
        covered += width;
        let w = width as f64;
        match attribution {
            Attribution::Priority => {
                if active[2] {
                    remote += w;
                } else if active[1] {
                    io += w;
                } else {
                    cpu += w;
                }
            }
            Attribution::Proportional => {
                let n = active.iter().filter(|&&a| a).count() as f64;
                if active[0] {
                    cpu += w / n;
                }
                if active[1] {
                    io += w / n;
                }
                if active[2] {
                    remote += w / n;
                }
            }
        }
    }

    E2eDecomposition {
        cpu: SimDuration::from_nanos(cpu.round() as u64),
        io: SimDuration::from_nanos(io.round() as u64),
        remote: SimDuration::from_nanos(remote.round() as u64),
        end_to_end,
        idle: SimDuration::from_nanos(end_to_end.as_nanos().saturating_sub(covered)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, TraceId};

    fn span(kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            trace: TraceId(1),
            id: SpanId(start * 1000 + end),
            parent: None,
            name: format!("{kind:?}"),
            kind,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            request: hsdp_core::request::RequestId::UNTAGGED,
        }
    }

    #[test]
    fn disjoint_spans_attribute_directly() {
        let spans = vec![
            span(SpanKind::Cpu, 0, 10),
            span(SpanKind::Io, 10, 30),
            span(SpanKind::RemoteWork, 30, 60),
        ];
        let d = decompose(&spans);
        assert_eq!(d.cpu.as_nanos(), 10);
        assert_eq!(d.io.as_nanos(), 20);
        assert_eq!(d.remote.as_nanos(), 30);
        assert_eq!(d.end_to_end.as_nanos(), 60);
        assert_eq!(d.idle.as_nanos(), 0);
        assert!((d.remote_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_goes_to_remote_first() {
        // CPU active the whole time, remote work overlapping the middle.
        let spans = vec![
            span(SpanKind::Cpu, 0, 100),
            span(SpanKind::RemoteWork, 20, 60),
            span(SpanKind::Io, 50, 80),
        ];
        let d = decompose(&spans);
        // remote: 20..60 = 40; io: 60..80 = 20; cpu: 0..20 + 80..100 = 40.
        assert_eq!(d.remote.as_nanos(), 40);
        assert_eq!(d.io.as_nanos(), 20);
        assert_eq!(d.cpu.as_nanos(), 40);
        // Attribution is exhaustive: shares sum to 1 with no idle.
        assert_eq!(d.idle.as_nanos(), 0);
    }

    #[test]
    fn proportional_splits_overlap() {
        let spans = vec![span(SpanKind::Cpu, 0, 100), span(SpanKind::Io, 0, 100)];
        let d = decompose_proportional(&spans);
        assert_eq!(d.cpu.as_nanos(), 50);
        assert_eq!(d.io.as_nanos(), 50);
        // Priority rule gives everything to IO.
        let p = decompose(&spans);
        assert_eq!(p.io.as_nanos(), 100);
        assert_eq!(p.cpu.as_nanos(), 0);
    }

    #[test]
    fn idle_gaps_are_tracked() {
        let spans = vec![span(SpanKind::Cpu, 0, 10), span(SpanKind::Cpu, 50, 60)];
        let d = decompose(&spans);
        assert_eq!(d.cpu.as_nanos(), 20);
        assert_eq!(d.end_to_end.as_nanos(), 60);
        assert_eq!(d.idle.as_nanos(), 40);
    }

    #[test]
    fn containers_define_e2e_but_not_categories() {
        let spans = vec![
            span(SpanKind::Container, 0, 200),
            span(SpanKind::Cpu, 50, 100),
        ];
        let d = decompose(&spans);
        assert_eq!(d.end_to_end.as_nanos(), 200);
        assert_eq!(d.cpu.as_nanos(), 50);
        assert_eq!(d.idle.as_nanos(), 150);
    }

    #[test]
    fn empty_trace_is_zero() {
        let d = decompose(&[]);
        assert_eq!(d, E2eDecomposition::default());
        assert_eq!(d.cpu_share(), 0.0);
    }

    #[test]
    fn zero_length_spans_ignored() {
        let spans = vec![span(SpanKind::Cpu, 5, 5), span(SpanKind::Io, 0, 10)];
        let d = decompose(&spans);
        assert_eq!(d.io.as_nanos(), 10);
        assert_eq!(d.cpu.as_nanos(), 0);
    }

    #[test]
    fn shares_sum_to_at_most_one() {
        let spans = vec![
            span(SpanKind::Cpu, 0, 35),
            span(SpanKind::Io, 20, 70),
            span(SpanKind::RemoteWork, 60, 100),
            span(SpanKind::Cpu, 90, 120),
        ];
        for attribution in [Attribution::Priority, Attribution::Proportional] {
            let d = decompose_with(&spans, attribution);
            let total = d.cpu_share() + d.io_share() + d.remote_share();
            // Nanosecond rounding can push the sum a hair over 1.
            assert!(total <= 1.0 + 0.02, "{attribution:?}: {total}");
            let covered = d.cpu + d.io + d.remote + d.idle;
            let drift = covered.as_nanos().abs_diff(d.end_to_end.as_nanos());
            // Proportional splits round each category independently: allow
            // a couple of nanoseconds of rounding drift.
            assert!(drift <= 2, "{attribution:?}: drift {drift}ns");
        }
    }
}
