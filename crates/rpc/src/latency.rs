//! The RPC latency model: propagation + serialization + transfer, with a
//! deterministic jitter hash so repeated calls vary realistically without
//! threading an RNG through every call site.

use hsdp_simcore::time::SimDuration;

/// Parameters of a network path between two services.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// One-way propagation latency.
    pub base: SimDuration,
    /// Link bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Jitter amplitude as a fraction of the base latency (`0` disables).
    pub jitter_frac: f64,
}

impl LatencyModel {
    /// An intra-cluster path: 50 us base, 5 GB/s, 20% jitter.
    #[must_use]
    pub fn intra_cluster() -> Self {
        LatencyModel {
            base: SimDuration::from_micros(50),
            bandwidth: 5e9,
            jitter_frac: 0.2,
        }
    }

    /// A cross-region path: 30 ms base, 1 GB/s, 10% jitter — the consensus
    /// round-trip cost of a globally replicated database.
    #[must_use]
    pub fn cross_region() -> Self {
        LatencyModel {
            base: SimDuration::from_millis(30),
            bandwidth: 1e9,
            jitter_frac: 0.1,
        }
    }

    /// One-way latency for a message of `bytes`, jittered by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive.
    #[must_use]
    pub fn one_way(&self, bytes: u64, seed: u64) -> SimDuration {
        assert!(self.bandwidth > 0.0, "bandwidth must be positive");
        // audit: allow(cast, u64 byte count to f64 for bandwidth division is exact below 2^53)
        let transfer = SimDuration::from_secs_f64(bytes as f64 / self.bandwidth);
        let jitter = if self.jitter_frac > 0.0 {
            // splitmix64 finalizer: uniform in [0, jitter_frac).
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
            self.base.scaled(self.jitter_frac * unit)
        } else {
            SimDuration::ZERO
        };
        self.base + transfer + jitter
    }

    /// A full request/response round trip with the given payload sizes.
    #[must_use]
    pub fn round_trip(&self, request_bytes: u64, response_bytes: u64, seed: u64) -> SimDuration {
        self.one_way(request_bytes, seed) + self.one_way(response_bytes, seed ^ 0xdead_beef)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_components() {
        let m = LatencyModel {
            base: SimDuration::from_micros(100),
            bandwidth: 1e9,
            jitter_frac: 0.0,
        };
        // 1 MB at 1 GB/s = 1 ms transfer + 100 us base.
        let t = m.one_way(1_000_000, 0);
        assert_eq!(t.as_micros(), 1_100);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let m = LatencyModel {
            base: SimDuration::from_micros(100),
            bandwidth: 1e12,
            jitter_frac: 0.5,
        };
        let a = m.one_way(0, 42);
        let b = m.one_way(0, 42);
        assert_eq!(a, b, "same seed, same latency");
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..100 {
            let t = m.one_way(0, seed);
            assert!(t >= m.base);
            assert!(t <= m.base + m.base.scaled(0.5));
            distinct.insert(t.as_nanos());
        }
        assert!(distinct.len() > 50, "jitter varies across seeds");
    }

    #[test]
    fn round_trip_exceeds_two_one_ways_base() {
        let m = LatencyModel::intra_cluster();
        let rt = m.round_trip(1024, 4096, 7);
        assert!(rt >= m.base + m.base);
    }

    #[test]
    fn cross_region_is_slower_than_intra_cluster() {
        let fast = LatencyModel::intra_cluster().one_way(1024, 1);
        let slow = LatencyModel::cross_region().one_way(1024, 1);
        assert!(slow.as_nanos() > 100 * fast.as_nanos());
    }
}
