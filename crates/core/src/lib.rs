//! # hsdp-core
//!
//! The analytical heart of the *Profiling Hyperscale Big Data Processing*
//! (ISCA 2023) reproduction: the cycle-accounting taxonomy of the paper's
//! profiling study (Sections 4–5) and the **sea-of-accelerators analytical
//! model** with its limit studies (Section 6).
//!
//! ## Layout
//!
//! - [`units`] — `Seconds` / `Bytes` / `Bandwidth` newtypes.
//! - [`audit`] — redundant invariant checks over breakdowns, populations,
//!   and speedup curves, wired into `debug_assert!` hooks.
//! - [`category`] — platforms and the core-compute / datacenter-tax /
//!   system-tax taxonomy (Tables 2–5).
//! - [`component`] — [`component::CpuBreakdown`]: where CPU time goes.
//! - [`model`] — Equations 1–2: end-to-end time under CPU/non-CPU overlap.
//! - [`accel`] — accelerator specs: speedup, setup, placement, payload
//!   (Equations 7–8).
//! - [`plan`] — [`plan::AccelerationPlan`]: sync/async/per-component/chained
//!   composition (Equations 3–6, 9).
//! - [`chained`] — the chained-execution extension (Equations 10–12).
//! - [`profile`] — query populations, Figure 2 groups, platform profiles.
//! - [`request`] — deterministic per-request identity for tail attribution.
//! - [`stack`] — call-frame paths for stack-aware GWP profiling.
//! - [`study`] — the limit studies behind Figures 9, 10, 13, 14, 15.
//! - [`paper`] — every published constant, plus calibrated synthetic query
//!   populations.
//!
//! ## Example
//!
//! Evaluate the paper's headline experiment — 64x lockstep acceleration of
//! the Section 6.2 component set — on the calibrated Spanner population:
//!
//! ```
//! use hsdp_core::accel::Speedup;
//! use hsdp_core::category::Platform;
//! use hsdp_core::paper;
//! use hsdp_core::plan::{AccelerationPlan, InvocationModel};
//!
//! let population = paper::query_population(Platform::Spanner);
//! let plan = AccelerationPlan::uniform(
//!     paper::accelerated_categories(Platform::Spanner),
//!     Speedup::new(64.0)?,
//!     InvocationModel::Synchronous,
//! )?;
//!
//! // With dependencies retained, hardware-only acceleration is bounded ~2x;
//! // removing IO and remote work (co-design) unlocks order-of-magnitude
//! // per-query peaks.
//! let bounded = population.aggregate_speedup(&plan);
//! let peak = population.peak_codesign_speedup(&plan);
//! assert!(bounded < 3.0);
//! assert!(peak > 5.0);
//! # Ok::<(), hsdp_core::error::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accel;
pub mod audit;
pub mod category;
pub mod chained;
pub mod component;
pub mod error;
pub mod model;
pub mod paper;
pub mod plan;
pub mod profile;
pub mod request;
pub mod stack;
pub mod study;
pub mod units;

pub use accel::{AcceleratorSpec, OverlapFactor, Placement, Speedup};
pub use audit::{audit, AuditFailure, Violation};
pub use category::{BroadCategory, CoreComputeOp, CpuCategory, DatacenterTax, Platform, SystemTax};
pub use component::CpuBreakdown;
pub use error::ModelError;
pub use model::QueryPhases;
pub use plan::{AccelerationPlan, InvocationModel, PlanOutcome};
pub use profile::{PlatformProfile, QueryGroup, QueryPopulation, QueryRecord};
pub use request::RequestId;
pub use units::{Bandwidth, Bytes, Seconds};
