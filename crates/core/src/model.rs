//! The base analytical model: end-to-end time with CPU / non-CPU overlap
//! (Equations 1–2 of Figure 7).
//!
//! A query's execution is summarized by [`QueryPhases`]: CPU time `t_cpu`,
//! non-CPU dependency time `t_dep` (distributed storage IO and remote work),
//! and the synchronization factor `f` between them. Equation 1 composes them:
//!
//! ```text
//! t_e2e = t_cpu + t_dep - (1 - f) * min(t_cpu, t_dep)
//! ```
//!
//! `f = 1` means CPU and its dependencies fully serialize; `f = 0` means the
//! smaller of the two is completely hidden under the larger.

use crate::accel::OverlapFactor;
use crate::units::Seconds;

/// The coarse phases of one query (or one aggregated query class).
///
/// # Examples
///
/// ```
/// use hsdp_core::model::QueryPhases;
/// use hsdp_core::accel::OverlapFactor;
/// use hsdp_core::units::Seconds;
///
/// // Fully serialized CPU and IO: e2e is the plain sum.
/// let q = QueryPhases::new(
///     Seconds::new(2.0),
///     Seconds::new(3.0),
///     OverlapFactor::SYNCHRONOUS,
/// );
/// assert!((q.end_to_end().as_secs() - 5.0).abs() < 1e-12);
/// ```
///
/// These are the inputs `t_cpu`, `t_dep`, and `f` of Equation 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPhases {
    cpu: Seconds,
    dep: Seconds,
    overlap: OverlapFactor,
}

impl QueryPhases {
    /// Creates phases from CPU time, non-CPU dependency time, and the
    /// synchronization factor `f` between them — the inputs of Equation 1.
    #[must_use]
    pub fn new(cpu: Seconds, dep: Seconds, overlap: OverlapFactor) -> Self {
        QueryPhases { cpu, dep, overlap }
    }

    /// Phases for a purely CPU-bound query (`t_dep = 0` in Equation 1).
    #[must_use]
    pub fn cpu_only(cpu: Seconds) -> Self {
        QueryPhases::new(cpu, Seconds::ZERO, OverlapFactor::SYNCHRONOUS)
    }

    /// The CPU time `t_cpu` of Equation 1.
    #[must_use]
    pub fn cpu(&self) -> Seconds {
        self.cpu
    }

    /// The non-CPU dependency time `t_dep` of Equation 1 (IO + remote work).
    #[must_use]
    pub fn dep(&self) -> Seconds {
        self.dep
    }

    /// The synchronization factor `f` of Equation 1.
    #[must_use]
    pub fn overlap(&self) -> OverlapFactor {
        self.overlap
    }

    /// End-to-end time per Equation 1.
    #[must_use]
    pub fn end_to_end(&self) -> Seconds {
        end_to_end_time(self.cpu, self.dep, self.overlap)
    }

    /// Phases with the non-CPU dependencies removed — the paper's
    /// software-hardware co-design scenario ("Without Remote Work & IO",
    /// Figures 9–10).
    #[must_use]
    pub fn without_dependencies(&self) -> QueryPhases {
        QueryPhases::new(self.cpu, Seconds::ZERO, self.overlap)
    }

    /// Phases with the CPU time replaced (e.g. by an accelerated estimate),
    /// keeping `t_dep` and `f` — the substitution Equation 2 performs.
    #[must_use]
    pub fn with_cpu(&self, cpu: Seconds) -> QueryPhases {
        QueryPhases::new(cpu, self.dep, self.overlap)
    }

    /// Fraction of end-to-end time attributable to CPU (after the overlap
    /// subtraction is charged to the dependency side, matching the paper's
    /// trace-attribution priority of remote work and IO over CPU, Section 3).
    ///
    /// Returns 0 for a zero-length query.
    #[must_use]
    pub fn cpu_fraction(&self) -> f64 {
        self.cpu
            .ratio(self.end_to_end())
            .map_or(0.0, |r| r.min(1.0))
    }
}

/// Equation 1: `t_e2e = t_cpu + t_dep - (1 - f) * min(t_cpu, t_dep)`.
#[must_use]
pub fn end_to_end_time(cpu: Seconds, dep: Seconds, overlap: OverlapFactor) -> Seconds {
    let hidden = cpu.min(dep).scaled(1.0 - overlap.value());
    let e2e = cpu + dep - hidden;
    debug_assert!(
        crate::audit::e2e_within_bounds(cpu, dep, e2e),
        "Eq. 1 result {e2e:?} escapes [max(t_cpu, t_dep), t_cpu + t_dep] \
         for cpu={cpu:?} dep={dep:?} f={overlap:?}"
    );
    e2e
}

/// Equation 2: end-to-end time with the CPU term replaced by its accelerated
/// estimate `t'_cpu`, holding `t_dep` and `f` fixed.
#[must_use]
pub fn accelerated_end_to_end_time(accelerated_cpu: Seconds, phases: &QueryPhases) -> Seconds {
    end_to_end_time(accelerated_cpu, phases.dep(), phases.overlap())
}

/// The speedup of `accelerated` relative to `original` end-to-end time —
/// the metric reported by the Figure 9 and Figure 10 studies.
///
/// Returns 1.0 when both are zero (an empty query neither speeds up nor slows
/// down); returns `f64::INFINITY` when only the accelerated time is zero.
#[must_use]
pub fn speedup_ratio(original: Seconds, accelerated: Seconds) -> f64 {
    if accelerated.is_zero() {
        if original.is_zero() {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        original.as_secs() / accelerated.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ModelError;

    #[test]
    fn eq1_synchronous_is_sum() {
        let t = end_to_end_time(
            Seconds::new(2.0),
            Seconds::new(3.0),
            OverlapFactor::SYNCHRONOUS,
        );
        assert!((t.as_secs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn eq1_asynchronous_hides_smaller_phase() {
        let t = end_to_end_time(
            Seconds::new(2.0),
            Seconds::new(3.0),
            OverlapFactor::ASYNCHRONOUS,
        );
        // min(2,3) fully hidden: 2 + 3 - 2 = 3 = max.
        assert!((t.as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eq1_partial_overlap() -> Result<(), ModelError> {
        let f = OverlapFactor::new(0.5)?;
        let t = end_to_end_time(Seconds::new(2.0), Seconds::new(3.0), f);
        // 2 + 3 - 0.5 * 2 = 4.
        assert!((t.as_secs() - 4.0).abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn eq2_substitutes_cpu() {
        let q = QueryPhases::new(
            Seconds::new(4.0),
            Seconds::new(1.0),
            OverlapFactor::SYNCHRONOUS,
        );
        let t = accelerated_end_to_end_time(Seconds::new(1.0), &q);
        assert!((t.as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn without_dependencies_zeroes_dep() {
        let q = QueryPhases::new(
            Seconds::new(4.0),
            Seconds::new(10.0),
            OverlapFactor::SYNCHRONOUS,
        );
        let stripped = q.without_dependencies();
        assert!(stripped.dep().is_zero());
        assert!((stripped.end_to_end().as_secs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cpu_fraction_bounds() {
        let q = QueryPhases::new(
            Seconds::new(1.0),
            Seconds::new(3.0),
            OverlapFactor::SYNCHRONOUS,
        );
        assert!((q.cpu_fraction() - 0.25).abs() < 1e-12);
        let empty = QueryPhases::cpu_only(Seconds::ZERO);
        assert_eq!(empty.cpu_fraction(), 0.0);
    }

    #[test]
    fn speedup_ratio_edge_cases() {
        assert_eq!(speedup_ratio(Seconds::ZERO, Seconds::ZERO), 1.0);
        assert_eq!(
            speedup_ratio(Seconds::new(1.0), Seconds::ZERO),
            f64::INFINITY
        );
        assert!((speedup_ratio(Seconds::new(4.0), Seconds::new(2.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_reduces_e2e_monotonically() {
        // As f decreases from 1 to 0, e2e must not increase.
        let cpu = Seconds::new(2.0);
        let dep = Seconds::new(5.0);
        let mut last = f64::INFINITY;
        for i in 0..=10 {
            let f = OverlapFactor::new(1.0 - i as f64 / 10.0).unwrap();
            let t = end_to_end_time(cpu, dep, f).as_secs();
            assert!(t <= last + 1e-12);
            last = t;
        }
    }
}
