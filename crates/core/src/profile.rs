//! Platform profiles and query populations.
//!
//! The paper's limit studies operate over *populations* of queries sampled
//! from production traces (Section 4.1). A [`QueryRecord`] captures one
//! query (or one weighted query class): its CPU / IO / remote-work phase
//! times and the CPU-time breakdown across fine categories. A
//! [`QueryPopulation`] aggregates them, classifies queries into the paper's
//! groups (Figure 2), and evaluates acceleration plans over the whole
//! population.

use crate::accel::OverlapFactor;
use crate::category::Platform;
use crate::component::CpuBreakdown;
use crate::error::ModelError;
use crate::model::{speedup_ratio, QueryPhases};
use crate::plan::AccelerationPlan;
use crate::units::Seconds;

/// Query groups of Figure 2.
///
/// Classification thresholds per Section 4.2: CPU-heavy queries spend more
/// than 60% of end-to-end time on CPU; IO-heavy and remote-work-heavy queries
/// spend more than 30% on distributed storage or remote work, respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryGroup {
    /// More than 60% of time on CPU computation.
    CpuHeavy,
    /// More than 30% of time on distributed storage IO.
    IoHeavy,
    /// More than 30% of time waiting on remote workers.
    RemoteWorkHeavy,
    /// Everything else.
    Others,
}

impl QueryGroup {
    /// The four groups in the paper's presentation order.
    pub const ALL: [QueryGroup; 4] = [
        QueryGroup::CpuHeavy,
        QueryGroup::IoHeavy,
        QueryGroup::RemoteWorkHeavy,
        QueryGroup::Others,
    ];

    /// Classifies a query from its end-to-end time shares.
    ///
    /// CPU dominance is checked first; between IO and remote work the larger
    /// share wins (the paper's groups are disjoint).
    #[must_use]
    pub fn classify(cpu_share: f64, io_share: f64, remote_share: f64) -> QueryGroup {
        if cpu_share > 0.60 {
            QueryGroup::CpuHeavy
        } else if io_share > 0.30 && io_share >= remote_share {
            QueryGroup::IoHeavy
        } else if remote_share > 0.30 {
            QueryGroup::RemoteWorkHeavy
        } else {
            QueryGroup::Others
        }
    }
}

impl std::fmt::Display for QueryGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            QueryGroup::CpuHeavy => "CPU Heavy",
            QueryGroup::IoHeavy => "IO Heavy",
            QueryGroup::RemoteWorkHeavy => "Remote Work Heavy",
            QueryGroup::Others => "Others",
        };
        f.write_str(name)
    }
}

/// One query (or weighted query class) in a population.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// CPU time.
    pub cpu: Seconds,
    /// Distributed-storage IO time.
    pub io: Seconds,
    /// Remote-work time (consensus, compaction, shuffle waits).
    pub remote: Seconds,
    /// Synchronization factor `f` between CPU and its non-CPU dependencies.
    ///
    /// Defaults to fully synchronous, consistent with the paper's trace
    /// attribution: overlapped time is charged to remote work, then IO, then
    /// CPU, which leaves the three phases disjoint.
    pub overlap: OverlapFactor,
    /// Absolute CPU-time breakdown across fine categories.
    pub breakdown: CpuBreakdown,
    /// Multiplicity weight of this record in the population.
    pub weight: f64,
}

impl QueryRecord {
    /// Builds a record, deriving the breakdown from fleet-level shares
    /// rescaled to this query's CPU time.
    #[must_use]
    pub fn from_shares(
        cpu: Seconds,
        io: Seconds,
        remote: Seconds,
        fleet_breakdown: &CpuBreakdown,
        weight: f64,
    ) -> QueryRecord {
        QueryRecord {
            cpu,
            io,
            remote,
            overlap: OverlapFactor::SYNCHRONOUS,
            breakdown: fleet_breakdown.rescaled(cpu),
            weight,
        }
    }

    /// Non-CPU dependency time `t_dep = io + remote`.
    #[must_use]
    pub fn dep(&self) -> Seconds {
        self.io + self.remote
    }

    /// The phases for the analytical model.
    #[must_use]
    pub fn phases(&self) -> QueryPhases {
        QueryPhases::new(self.cpu, self.dep(), self.overlap)
    }

    /// End-to-end time (Eq. 1).
    #[must_use]
    pub fn end_to_end(&self) -> Seconds {
        self.phases().end_to_end()
    }

    /// The query's group per the Figure 2 thresholds.
    #[must_use]
    pub fn group(&self) -> QueryGroup {
        let e2e = self.end_to_end();
        match e2e.ratio(e2e) {
            None => QueryGroup::Others, // zero-length query
            Some(_) => {
                let total = e2e.as_secs();
                QueryGroup::classify(
                    self.cpu.as_secs() / total,
                    self.io.as_secs() / total,
                    self.remote.as_secs() / total,
                )
            }
        }
    }
}

/// One row of the Figure 2 chart: a query group's population share and its
/// average end-to-end time composition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupBreakdown {
    /// The group.
    pub group: QueryGroup,
    /// Fraction of queries (by weight) in this group.
    pub query_fraction: f64,
    /// Share of the group's end-to-end time spent on CPU.
    pub cpu_share: f64,
    /// Share spent on remote work.
    pub remote_share: f64,
    /// Share spent on distributed-storage IO.
    pub io_share: f64,
}

/// A weighted population of queries for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPopulation {
    records: Vec<QueryRecord>,
}

impl QueryPopulation {
    /// Builds a population.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyPopulation`] if `records` is empty.
    pub fn new(records: Vec<QueryRecord>) -> Result<Self, ModelError> {
        if records.is_empty() {
            return Err(ModelError::EmptyPopulation);
        }
        Ok(QueryPopulation { records })
    }

    /// The records.
    #[must_use]
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// Number of records (query classes, not weighted queries).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always false: populations are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total weight.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.records.iter().map(|r| r.weight).sum()
    }

    /// Weighted total original end-to-end time.
    #[must_use]
    pub fn total_end_to_end(&self) -> Seconds {
        self.records
            .iter()
            .map(|r| r.end_to_end().scaled(r.weight))
            .sum()
    }

    /// Time-weighted aggregate speedup of a plan over the population:
    /// `Σ w_i * t_e2e_i  /  Σ w_i * t'_e2e_i`.
    ///
    /// This is the quantity the paper's Figures 9 and 13–15 plot per
    /// platform.
    #[must_use]
    pub fn aggregate_speedup(&self, plan: &AccelerationPlan) -> f64 {
        let mut original = Seconds::ZERO;
        let mut accelerated = Seconds::ZERO;
        for r in &self.records {
            let outcome = plan.evaluate(&r.phases(), &r.breakdown);
            original += outcome.original_e2e.scaled(r.weight);
            accelerated += outcome.accelerated_e2e.scaled(r.weight);
        }
        speedup_ratio(original, accelerated)
    }

    /// The largest per-query speedup of a plan over the population — the
    /// "peaks" the paper quotes for Figure 9 (e.g. 3,223.6x for BigTable).
    #[must_use]
    pub fn peak_speedup(&self, plan: &AccelerationPlan) -> f64 {
        self.records
            .iter()
            .map(|r| plan.evaluate(&r.phases(), &r.breakdown).speedup)
            .fold(1.0, f64::max)
    }

    /// Aggregate *co-design* speedup: the original system keeps its IO and
    /// remote work, while the accelerated system removes them entirely (the
    /// "Without Remote Work & IO" scenario of Figures 9–10, where
    /// software-hardware co-design eliminates the non-CPU dependencies).
    #[must_use]
    pub fn aggregate_codesign_speedup(&self, plan: &AccelerationPlan) -> f64 {
        let mut original = Seconds::ZERO;
        let mut accelerated = Seconds::ZERO;
        for r in &self.records {
            original += r.end_to_end().scaled(r.weight);
            let stripped = r.phases().without_dependencies();
            accelerated += plan
                .evaluate(&stripped, &r.breakdown)
                .accelerated_e2e
                .scaled(r.weight);
        }
        speedup_ratio(original, accelerated)
    }

    /// The largest per-query co-design speedup (the Figure 9 peaks).
    #[must_use]
    pub fn peak_codesign_speedup(&self, plan: &AccelerationPlan) -> f64 {
        self.records
            .iter()
            .map(|r| {
                let original = r.end_to_end();
                let stripped = r.phases().without_dependencies();
                let accelerated = plan.evaluate(&stripped, &r.breakdown).accelerated_e2e;
                speedup_ratio(original, accelerated)
            })
            .fold(1.0, f64::max)
    }

    /// A derived population with every query's non-CPU dependencies removed
    /// (the "Without Remote Work & IO" scenario of Figures 9–10).
    #[must_use]
    pub fn without_dependencies(&self) -> QueryPopulation {
        QueryPopulation {
            records: self
                .records
                .iter()
                .map(|r| QueryRecord {
                    io: Seconds::ZERO,
                    remote: Seconds::ZERO,
                    ..r.clone()
                })
                .collect(),
        }
    }

    /// The sub-population belonging to one query group, or `None` if the
    /// group is unpopulated.
    #[must_use]
    pub fn group_population(&self, group: QueryGroup) -> Option<QueryPopulation> {
        let records: Vec<QueryRecord> = self
            .records
            .iter()
            .filter(|r| r.group() == group)
            .cloned()
            .collect();
        QueryPopulation::new(records).ok()
    }

    /// Figure 2 rows: per-group population share and average end-to-end time
    /// composition, in the paper's group order, followed by the overall
    /// average as a final row with `query_fraction = 1.0`.
    #[must_use]
    pub fn e2e_breakdown(&self) -> Vec<GroupBreakdown> {
        let total_weight = self.total_weight();
        let mut rows = Vec::with_capacity(QueryGroup::ALL.len() + 1);
        for group in QueryGroup::ALL {
            let members: Vec<&QueryRecord> =
                self.records.iter().filter(|r| r.group() == group).collect();
            let weight: f64 = members.iter().map(|r| r.weight).sum();
            let (cpu, io, remote, e2e) = weighted_phase_sums(&members);
            rows.push(GroupBreakdown {
                group,
                query_fraction: if total_weight > 0.0 {
                    weight / total_weight
                } else {
                    0.0
                },
                cpu_share: share(cpu, e2e),
                remote_share: share(remote, e2e),
                io_share: share(io, e2e),
            });
        }
        let all: Vec<&QueryRecord> = self.records.iter().collect();
        let (cpu, io, remote, e2e) = weighted_phase_sums(&all);
        rows.push(GroupBreakdown {
            group: QueryGroup::Others, // placeholder; callers treat the last row as "Overall"
            query_fraction: 1.0,
            cpu_share: share(cpu, e2e),
            remote_share: share(remote, e2e),
            io_share: share(io, e2e),
        });
        rows
    }

    /// The population's weighted fleet-level CPU breakdown: every record's
    /// breakdown summed with its weight. This is what the GWP-style profiler
    /// would observe (Figures 3–6).
    #[must_use]
    pub fn fleet_breakdown(&self) -> CpuBreakdown {
        let mut fleet = CpuBreakdown::new();
        for r in &self.records {
            for (category, time) in r.breakdown.iter() {
                fleet.add(category, time.scaled(r.weight));
            }
        }
        fleet
    }
}

fn weighted_phase_sums(records: &[&QueryRecord]) -> (Seconds, Seconds, Seconds, Seconds) {
    let mut cpu = Seconds::ZERO;
    let mut io = Seconds::ZERO;
    let mut remote = Seconds::ZERO;
    let mut e2e = Seconds::ZERO;
    for r in records {
        cpu += r.cpu.scaled(r.weight);
        io += r.io.scaled(r.weight);
        remote += r.remote.scaled(r.weight);
        e2e += r.end_to_end().scaled(r.weight);
    }
    (cpu, io, remote, e2e)
}

fn share(part: Seconds, whole: Seconds) -> f64 {
    part.ratio(whole).unwrap_or(0.0)
}

/// A platform together with its query population and fleet CPU breakdown —
/// everything the limit studies need.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformProfile {
    /// Which platform this profile describes.
    pub platform: Platform,
    /// The query population (Figure 2 inputs and sweep populations).
    pub population: QueryPopulation,
    /// Fleet-level CPU breakdown shares (Figures 3–6 inputs), normalized to
    /// a 1-second total so `time(cat)` doubles as the share.
    pub fleet_breakdown: CpuBreakdown,
}

impl PlatformProfile {
    /// Builds a profile.
    #[must_use]
    pub fn new(
        platform: Platform,
        population: QueryPopulation,
        fleet_breakdown: CpuBreakdown,
    ) -> Self {
        PlatformProfile {
            platform,
            population,
            fleet_breakdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::Speedup;
    use crate::category::{CoreComputeOp, CpuCategory, DatacenterTax};
    use crate::plan::InvocationModel;

    fn breakdown() -> CpuBreakdown {
        CpuBreakdown::from_shares(
            Seconds::new(1.0),
            &[
                (CpuCategory::from(CoreComputeOp::Read), 0.5),
                (CpuCategory::from(DatacenterTax::Protobuf), 0.5),
            ],
        )
        .unwrap()
    }

    fn record(cpu: f64, io: f64, remote: f64, weight: f64) -> QueryRecord {
        QueryRecord::from_shares(
            Seconds::new(cpu),
            Seconds::new(io),
            Seconds::new(remote),
            &breakdown(),
            weight,
        )
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(QueryGroup::classify(0.7, 0.2, 0.1), QueryGroup::CpuHeavy);
        assert_eq!(QueryGroup::classify(0.3, 0.5, 0.2), QueryGroup::IoHeavy);
        assert_eq!(
            QueryGroup::classify(0.3, 0.2, 0.5),
            QueryGroup::RemoteWorkHeavy
        );
        assert_eq!(QueryGroup::classify(0.5, 0.25, 0.25), QueryGroup::Others);
        // CPU dominance wins even when IO also crosses its threshold.
        assert_eq!(QueryGroup::classify(0.61, 0.35, 0.04), QueryGroup::CpuHeavy);
        // Ties between IO and remote go to IO (both above threshold).
        assert_eq!(QueryGroup::classify(0.2, 0.4, 0.4), QueryGroup::IoHeavy);
    }

    #[test]
    fn record_group_uses_phase_shares() {
        assert_eq!(record(7.0, 2.0, 1.0, 1.0).group(), QueryGroup::CpuHeavy);
        assert_eq!(record(1.0, 8.0, 1.0, 1.0).group(), QueryGroup::IoHeavy);
        assert_eq!(
            record(1.0, 1.0, 8.0, 1.0).group(),
            QueryGroup::RemoteWorkHeavy
        );
        assert_eq!(record(5.0, 2.5, 2.5, 1.0).group(), QueryGroup::Others);
    }

    #[test]
    fn empty_population_rejected() {
        assert!(matches!(
            QueryPopulation::new(vec![]).unwrap_err(),
            ModelError::EmptyPopulation
        ));
    }

    #[test]
    fn aggregate_speedup_weights_by_time() {
        let pop =
            QueryPopulation::new(vec![record(1.0, 0.0, 0.0, 1.0), record(1.0, 9.0, 0.0, 1.0)])
                .unwrap();
        let plan = AccelerationPlan::uniform(
            [
                CpuCategory::from(CoreComputeOp::Read),
                CpuCategory::from(DatacenterTax::Protobuf),
            ],
            Speedup::new(1e9).unwrap(),
            InvocationModel::Synchronous,
        )
        .unwrap();
        // Original total: 1 + 10 = 11. Accelerated: ~0 + 9 = 9.
        let s = pop.aggregate_speedup(&plan);
        assert!((s - 11.0 / 9.0).abs() < 1e-6);
        // Peak comes from the CPU-only query: effectively unbounded.
        assert!(pop.peak_speedup(&plan) > 1e6);
    }

    #[test]
    fn without_dependencies_strips_io_and_remote() {
        let pop = QueryPopulation::new(vec![record(1.0, 2.0, 3.0, 1.0)]).unwrap();
        let stripped = pop.without_dependencies();
        assert!(stripped.records()[0].io.is_zero());
        assert!(stripped.records()[0].remote.is_zero());
        assert!((stripped.total_end_to_end().as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn e2e_breakdown_rows_are_consistent() {
        let pop = QueryPopulation::new(vec![
            record(7.0, 2.0, 1.0, 6.0), // CPU heavy, weight 6
            record(1.0, 8.0, 1.0, 2.0), // IO heavy
            record(1.0, 1.0, 8.0, 1.0), // remote heavy
            record(5.0, 2.5, 2.5, 1.0), // others
        ])
        .unwrap();
        let rows = pop.e2e_breakdown();
        assert_eq!(rows.len(), 5);
        let fractions: f64 = rows[..4].iter().map(|r| r.query_fraction).sum();
        assert!((fractions - 1.0).abs() < 1e-9);
        assert!((rows[0].query_fraction - 0.6).abs() < 1e-9);
        // Every populated group's shares sum to ~1.
        for row in &rows[..4] {
            let total = row.cpu_share + row.remote_share + row.io_share;
            assert!((total - 1.0).abs() < 1e-9, "group {:?}", row.group);
        }
        // Overall row's CPU share reflects the dominant CPU-heavy weight.
        assert!(rows[4].cpu_share > 0.49);
    }

    #[test]
    fn group_population_roundtrip() {
        let pop =
            QueryPopulation::new(vec![record(7.0, 2.0, 1.0, 1.0), record(1.0, 8.0, 1.0, 1.0)])
                .unwrap();
        let cpu_pop = pop.group_population(QueryGroup::CpuHeavy).unwrap();
        assert_eq!(cpu_pop.len(), 1);
        assert!(pop.group_population(QueryGroup::RemoteWorkHeavy).is_none());
    }

    #[test]
    fn fleet_breakdown_weights_records() {
        let pop =
            QueryPopulation::new(vec![record(1.0, 0.0, 0.0, 3.0), record(2.0, 0.0, 0.0, 1.0)])
                .unwrap();
        let fleet = pop.fleet_breakdown();
        // Total CPU = 3*1 + 1*2 = 5, split evenly between the two categories.
        assert!((fleet.total().as_secs() - 5.0).abs() < 1e-9);
        assert!((fleet.share(CpuCategory::from(CoreComputeOp::Read)) - 0.5).abs() < 1e-9);
    }
}
