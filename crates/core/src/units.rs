//! Physical-quantity newtypes used throughout the model.
//!
//! The analytical model of the paper (Figure 7) mixes times, byte counts and
//! bandwidths; newtypes keep them from being confused ([C-NEWTYPE]).
//!
//! All quantities are non-negative by construction: the checked constructors
//! return an error for negative or non-finite input, and arithmetic is
//! saturating at zero for subtraction.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::error::ModelError;

/// A span of time in seconds.
///
/// # Examples
///
/// ```
/// use hsdp_core::units::Seconds;
/// let t = Seconds::from_micros(518.3);
/// assert!((t.as_secs() - 518.3e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero seconds.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a time span, panicking on negative or non-finite input.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or infinite. Use [`Seconds::try_new`]
    /// for fallible construction.
    #[must_use]
    pub fn new(secs: f64) -> Self {
        // audit: allow(panic, documented panic contract; try_new is the fallible form)
        Self::try_new(secs).expect("Seconds::new requires a finite, non-negative value")
    }

    /// Creates a time span, validating the input.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `secs` is negative, NaN or
    /// infinite.
    pub fn try_new(secs: f64) -> Result<Self, ModelError> {
        if secs.is_finite() && secs >= 0.0 {
            Ok(Seconds(secs))
        } else {
            Err(ModelError::InvalidQuantity {
                quantity: "Seconds",
                value: secs,
            })
        }
    }

    /// Creates a time span from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Seconds::new(us * 1e-6)
    }

    /// Creates a time span from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Seconds::new(ms * 1e-3)
    }

    /// Creates a time span from nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: f64) -> Self {
        Seconds::new(ns * 1e-9)
    }

    /// The value in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in microseconds.
    #[must_use]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The value in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the smaller of two time spans.
    #[must_use]
    pub fn min(self, other: Seconds) -> Seconds {
        Seconds(self.0.min(other.0))
    }

    /// Returns the larger of two time spans.
    #[must_use]
    pub fn max(self, other: Seconds) -> Seconds {
        Seconds(self.0.max(other.0))
    }

    /// True if the span is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Scales the span by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Seconds {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        Seconds(self.0 * factor)
    }

    /// The ratio `self / other`, or `None` when `other` is zero.
    #[must_use]
    pub fn ratio(self, other: Seconds) -> Option<f64> {
        if other.is_zero() {
            None
        } else {
            Some(self.0 / other.0)
        }
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    /// Saturating subtraction: never goes below zero.
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        self.scaled(rhs)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    /// # Panics
    ///
    /// Panics when dividing by zero or a negative/non-finite divisor.
    fn div(self, rhs: f64) -> Seconds {
        assert!(
            rhs.is_finite() && rhs > 0.0,
            "Seconds division requires a positive finite divisor, got {rhs}"
        );
        Seconds(self.0 / rhs)
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, Add::add)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0.0 {
            write!(f, "0s")
        } else if self.0 < 1e-6 {
            write!(f, "{:.1}ns", self.0 * 1e9)
        } else if self.0 < 1e-3 {
            write!(f, "{:.1}us", self.0 * 1e6)
        } else if self.0 < 1.0 {
            write!(f, "{:.1}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

/// A number of bytes (the `B_i` offload payload in Equation 8).
///
/// # Examples
///
/// ```
/// use hsdp_core::units::{Bytes, Bandwidth};
/// let payload = Bytes::from_kib(64.0);
/// let link = Bandwidth::from_gib_per_sec(4.0);
/// let t = link.transfer_time(payload);
/// assert!(t.as_secs() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bytes(f64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0.0);

    /// Creates a byte count, panicking on negative or non-finite input.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative, NaN or infinite.
    #[must_use]
    pub fn new(bytes: f64) -> Self {
        // audit: allow(panic, documented panic contract; try_new is the fallible form)
        Self::try_new(bytes).expect("Bytes::new requires a finite, non-negative value")
    }

    /// Creates a byte count, validating the input.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] on negative or non-finite input.
    pub fn try_new(bytes: f64) -> Result<Self, ModelError> {
        if bytes.is_finite() && bytes >= 0.0 {
            Ok(Bytes(bytes))
        } else {
            Err(ModelError::InvalidQuantity {
                quantity: "Bytes",
                value: bytes,
            })
        }
    }

    /// Creates a byte count from KiB.
    #[must_use]
    pub fn from_kib(kib: f64) -> Self {
        Bytes::new(kib * 1024.0)
    }

    /// Creates a byte count from MiB.
    #[must_use]
    pub fn from_mib(mib: f64) -> Self {
        Bytes::new(mib * 1024.0 * 1024.0)
    }

    /// Creates a byte count from GiB.
    #[must_use]
    pub fn from_gib(gib: f64) -> Self {
        Bytes::new(gib * 1024.0 * 1024.0 * 1024.0)
    }

    /// Creates a byte count from PiB (fleet-scale provisioning, Table 1).
    #[must_use]
    pub fn from_pib(pib: f64) -> Self {
        Bytes::new(pib * 1024f64.powi(5))
    }

    /// The raw byte count.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// True if the count is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The ratio `self / other`, or `None` when `other` is zero.
    #[must_use]
    pub fn ratio(self, other: Bytes) -> Option<f64> {
        if other.is_zero() {
            None
        } else {
            Some(self.0 / other.0)
        }
    }

    /// Scales the count by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Bytes {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        Bytes(self.0 * factor)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const UNITS: [(&str, f64); 5] = [
            ("PiB", 1024f64 * 1024.0 * 1024.0 * 1024.0 * 1024.0),
            ("TiB", 1024f64 * 1024.0 * 1024.0 * 1024.0),
            ("GiB", 1024f64 * 1024.0 * 1024.0),
            ("MiB", 1024f64 * 1024.0),
            ("KiB", 1024f64),
        ];
        for (name, scale) in UNITS {
            if self.0 >= scale {
                return write!(f, "{:.2}{name}", self.0 / scale);
            }
        }
        write!(f, "{:.0}B", self.0)
    }
}

/// A link bandwidth (the `BW_i` of Equation 8), in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth, panicking on non-positive or non-finite input.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not a positive finite number; a link with
    /// zero bandwidth would make Equation 8 undefined.
    #[must_use]
    pub fn new(bytes_per_sec: f64) -> Self {
        Self::try_new(bytes_per_sec)
            // audit: allow(panic, documented panic contract; try_new is the fallible form)
            .expect("Bandwidth::new requires a positive, finite value")
    }

    /// Creates a bandwidth, validating the input.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] unless `bytes_per_sec` is
    /// positive and finite.
    pub fn try_new(bytes_per_sec: f64) -> Result<Self, ModelError> {
        if bytes_per_sec.is_finite() && bytes_per_sec > 0.0 {
            Ok(Bandwidth(bytes_per_sec))
        } else {
            Err(ModelError::InvalidQuantity {
                quantity: "Bandwidth",
                value: bytes_per_sec,
            })
        }
    }

    /// Creates a bandwidth from GiB/s.
    #[must_use]
    pub fn from_gib_per_sec(gib: f64) -> Self {
        Bandwidth::new(gib * 1024.0 * 1024.0 * 1024.0)
    }

    /// Creates a bandwidth from GB/s (decimal, as in "PCIe Gen5 4GB/s").
    #[must_use]
    pub fn from_gb_per_sec(gb: f64) -> Self {
        Bandwidth::new(gb * 1e9)
    }

    /// The raw value in bytes per second.
    #[must_use]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time to move `payload` across this link once (`B / BW`).
    #[must_use]
    pub fn transfer_time(self, payload: Bytes) -> Seconds {
        Seconds::new(payload.as_f64() / self.0)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GB/s", self.0 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_constructors_and_accessors() {
        assert_eq!(Seconds::from_micros(1.0).as_secs(), 1e-6);
        assert_eq!(Seconds::from_millis(1.0).as_secs(), 1e-3);
        assert_eq!(Seconds::from_nanos(1.0).as_secs(), 1e-9);
        assert_eq!(Seconds::new(2.0).as_micros(), 2e6);
        assert_eq!(Seconds::new(2.0).as_millis(), 2e3);
    }

    #[test]
    fn seconds_rejects_invalid() {
        assert!(Seconds::try_new(-1.0).is_err());
        assert!(Seconds::try_new(f64::NAN).is_err());
        assert!(Seconds::try_new(f64::INFINITY).is_err());
        assert!(Seconds::try_new(0.0).is_ok());
    }

    #[test]
    fn seconds_sub_saturates_at_zero() {
        let a = Seconds::new(1.0);
        let b = Seconds::new(2.0);
        assert_eq!((a - b).as_secs(), 0.0);
        assert_eq!((b - a).as_secs(), 1.0);
    }

    #[test]
    fn seconds_min_max_sum() {
        let a = Seconds::new(1.0);
        let b = Seconds::new(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let total: Seconds = [a, b].into_iter().sum();
        assert_eq!(total.as_secs(), 3.0);
    }

    #[test]
    fn seconds_ratio() {
        assert_eq!(Seconds::new(4.0).ratio(Seconds::new(2.0)), Some(2.0));
        assert_eq!(Seconds::new(4.0).ratio(Seconds::ZERO), None);
    }

    #[test]
    fn seconds_display_picks_unit() {
        assert_eq!(Seconds::ZERO.to_string(), "0s");
        assert_eq!(Seconds::from_nanos(5.0).to_string(), "5.0ns");
        assert_eq!(Seconds::from_micros(5.0).to_string(), "5.0us");
        assert_eq!(Seconds::from_millis(5.0).to_string(), "5.0ms");
        assert_eq!(Seconds::new(5.0).to_string(), "5.000s");
    }

    #[test]
    #[should_panic(expected = "finite, non-negative")]
    fn seconds_new_panics_on_negative() {
        let _ = Seconds::new(-0.5);
    }

    #[test]
    fn bytes_units_and_ratio() {
        assert_eq!(Bytes::from_kib(1.0).as_f64(), 1024.0);
        assert_eq!(Bytes::from_mib(1.0).as_f64(), 1024.0 * 1024.0);
        assert_eq!(Bytes::from_gib(1.0).as_f64(), 1024f64.powi(3));
        assert_eq!(Bytes::from_pib(1.0).as_f64(), 1024f64.powi(5));
        assert_eq!(Bytes::from_mib(2.0).ratio(Bytes::from_mib(1.0)), Some(2.0));
        assert_eq!(Bytes::from_mib(2.0).ratio(Bytes::ZERO), None);
    }

    #[test]
    fn bytes_display() {
        assert_eq!(Bytes::new(10.0).to_string(), "10B");
        assert_eq!(Bytes::from_kib(1.5).to_string(), "1.50KiB");
        assert_eq!(Bytes::from_pib(2.0).to_string(), "2.00PiB");
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::from_gb_per_sec(4.0);
        let t = bw.transfer_time(Bytes::new(4e9));
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_rejects_zero() {
        assert!(Bandwidth::try_new(0.0).is_err());
        assert!(Bandwidth::try_new(-1.0).is_err());
        assert!(Bandwidth::try_new(1.0).is_ok());
    }

    #[test]
    fn send_sync_impls() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Seconds>();
        assert_send_sync::<Bytes>();
        assert_send_sync::<Bandwidth>();
    }
}
