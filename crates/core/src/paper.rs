//! Published numbers from the paper, and the synthetic populations
//! calibrated against them.
//!
//! Every constant here cites the table or figure it comes from. Where the
//! paper publishes exact values (Tables 1, 6, 7, 8 and the headline
//! percentages of Sections 4–6) we use them verbatim; where it publishes
//! only charts (Figures 2, 4–6) we fix point values inside the stated ranges
//! and treat chart *shape* as the reproduction target (see DESIGN.md).
//!
//! The [`query_population`] builder produces, for each platform, a weighted
//! population of query classes whose Figure 2 group mix, Figure 9 peak and
//! aggregate speedups, and Figure 13 trade-offs land near the paper's
//! published values. The calibration arithmetic is documented inline.

use crate::category::{CoreComputeOp, CpuCategory, DatacenterTax, Platform, SystemTax};
use crate::component::CpuBreakdown;
use crate::profile::{PlatformProfile, QueryPopulation, QueryRecord};
use crate::units::{Bytes, Seconds};

// ---------------------------------------------------------------------------
// Table 1: storage-to-storage ratios.
// ---------------------------------------------------------------------------

/// A RAM : SSD : HDD provisioning ratio (Table 1), normalized to RAM = 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageRatio {
    /// RAM petabytes (normalized to 1).
    pub ram: f64,
    /// SSD petabytes per RAM petabyte.
    pub ssd: f64,
    /// HDD petabytes per RAM petabyte.
    pub hdd: f64,
}

impl StorageRatio {
    /// SSD-to-HDD ratio (the paper notes it is "approx. 10x to 110x",
    /// Section 5).
    #[must_use]
    pub fn hdd_per_ssd(&self) -> f64 {
        self.hdd / self.ssd
    }
}

/// Table 1 ratios. The text fixes the HDD column: "For every 90, 164, or 777
/// bytes in HDD, a byte is allocated in RAM across Spanner, BigTable, and
/// BigQuery, respectively."
#[must_use]
pub fn storage_ratio(platform: Platform) -> StorageRatio {
    match platform {
        Platform::Spanner => StorageRatio {
            ram: 1.0,
            ssd: 8.0,
            hdd: 90.0,
        },
        Platform::BigTable => StorageRatio {
            ram: 1.0,
            ssd: 16.0,
            hdd: 164.0,
        },
        Platform::BigQuery => StorageRatio {
            ram: 1.0,
            ssd: 7.0,
            hdd: 777.0,
        },
    }
}

// ---------------------------------------------------------------------------
// Figure 3: broad cycle shares.
// ---------------------------------------------------------------------------

/// Figure 3 broad shares `(core compute, datacenter tax, system tax)`.
///
/// The paper states core compute spans 18–36%, datacenter taxes 32–40%, and
/// system taxes 32–42% across the platforms; these point values sit inside
/// those ranges with the databases at the core-compute-heavy end.
#[must_use]
pub fn broad_shares(platform: Platform) -> [f64; 3] {
    match platform {
        Platform::Spanner => [0.36, 0.32, 0.32],
        Platform::BigTable => [0.28, 0.40, 0.32],
        Platform::BigQuery => [0.18, 0.40, 0.42],
    }
}

// ---------------------------------------------------------------------------
// Figure 4 / Tables 4–5: core-compute fine shares (within core compute).
// ---------------------------------------------------------------------------

/// Figure 4 core-compute shares, normalized within the core-compute slice.
///
/// Databases are dominated by read/write/consensus; BigQuery by
/// filter/aggregate/compute (the paper quotes 14–23% for those three).
#[must_use]
pub fn core_compute_shares(platform: Platform) -> Vec<(CoreComputeOp, f64)> {
    use CoreComputeOp::*;
    match platform {
        Platform::Spanner => vec![
            (Read, 0.22),
            (Write, 0.18),
            (Consensus, 0.15),
            (Query, 0.13),
            (MiscCore, 0.13),
            (Uncategorized, 0.10),
            (Compaction, 0.09),
        ],
        Platform::BigTable => vec![
            (Read, 0.25),
            (Write, 0.20),
            (MiscCore, 0.18),
            (Compaction, 0.15),
            (Consensus, 0.12),
            (Uncategorized, 0.10),
        ],
        Platform::BigQuery => vec![
            (Filter, 0.21),
            (Aggregate, 0.17),
            (Compute, 0.14),
            (MiscCore, 0.10),
            (Join, 0.10),
            (Sort, 0.08),
            (Destructure, 0.07),
            (Project, 0.05),
            (Materialize, 0.04),
            (Uncategorized, 0.04),
        ],
    }
}

// ---------------------------------------------------------------------------
// Figure 5 / Table 2: datacenter-tax fine shares (within datacenter tax).
// ---------------------------------------------------------------------------

/// Figure 5 datacenter-tax shares. The paper's anchors: protobuf 20–25%
/// (highest in BigQuery), compression 14–31% (>30% in BigTable/BigQuery),
/// RPC 23% / 37% / 11% for Spanner / BigTable / BigQuery.
#[must_use]
pub fn datacenter_tax_shares(platform: Platform) -> Vec<(DatacenterTax, f64)> {
    use DatacenterTax::*;
    match platform {
        Platform::Spanner => vec![
            (Rpc, 0.23),
            (Protobuf, 0.20),
            (DataMovement, 0.18),
            (MemAllocation, 0.15),
            (Compression, 0.14),
            (Cryptography, 0.10),
        ],
        Platform::BigTable => vec![
            (Rpc, 0.37),
            (Compression, 0.31),
            (Protobuf, 0.20),
            (DataMovement, 0.05),
            (MemAllocation, 0.04),
            (Cryptography, 0.03),
        ],
        Platform::BigQuery => vec![
            (Compression, 0.30),
            (Protobuf, 0.25),
            (DataMovement, 0.15),
            (MemAllocation, 0.12),
            (Rpc, 0.11),
            (Cryptography, 0.07),
        ],
    }
}

// ---------------------------------------------------------------------------
// Figure 6 / Table 3: system-tax fine shares (within system tax).
// ---------------------------------------------------------------------------

/// Figure 6 system-tax shares. Anchors: operating systems 18–28%, standard
/// libraries up to 53% (BigQuery).
#[must_use]
pub fn system_tax_shares(platform: Platform) -> Vec<(SystemTax, f64)> {
    use SystemTax::*;
    match platform {
        Platform::Spanner => vec![
            (Stl, 0.30),
            (OperatingSystems, 0.28),
            (FileSystems, 0.12),
            (Networking, 0.10),
            (Multithreading, 0.08),
            (OtherMemoryOps, 0.06),
            (Edac, 0.03),
            (MiscSystem, 0.03),
        ],
        Platform::BigTable => vec![
            (Stl, 0.35),
            (OperatingSystems, 0.25),
            (FileSystems, 0.13),
            (Networking, 0.09),
            (Multithreading, 0.06),
            (OtherMemoryOps, 0.05),
            (Edac, 0.04),
            (MiscSystem, 0.03),
        ],
        Platform::BigQuery => vec![
            (Stl, 0.53),
            (OperatingSystems, 0.18),
            (FileSystems, 0.08),
            (Networking, 0.06),
            (Multithreading, 0.05),
            (OtherMemoryOps, 0.04),
            (Edac, 0.03),
            (MiscSystem, 0.03),
        ],
    }
}

// ---------------------------------------------------------------------------
// Combined fleet breakdown.
// ---------------------------------------------------------------------------

/// The fleet-level CPU breakdown for one platform: Figure 3's broad shares
/// filled in with Figures 4–6's fine shares, normalized to a 1-second total
/// so each component's time doubles as its share of CPU cycles.
#[must_use]
pub fn fleet_breakdown(platform: Platform) -> CpuBreakdown {
    let [core, dct, st] = broad_shares(platform);
    let mut shares: Vec<(CpuCategory, f64)> = Vec::new();
    for (op, s) in core_compute_shares(platform) {
        shares.push((CpuCategory::Core(op), core * s));
    }
    for (tax, s) in datacenter_tax_shares(platform) {
        shares.push((CpuCategory::Datacenter(tax), dct * s));
    }
    for (tax, s) in system_tax_shares(platform) {
        shares.push((CpuCategory::System(tax), st * s));
    }
    // Normalize away rounding drift so from_shares' tolerance is respected.
    let sum: f64 = shares.iter().map(|(_, s)| s).sum();
    for (_, s) in &mut shares {
        *s /= sum;
    }
    CpuBreakdown::from_shares(Seconds::new(1.0), &shares)
        // audit: allow(panic, the shares are renormalized above and the static tables are duplicate-free)
        .expect("paper shares are normalized and duplicate-free")
}

// ---------------------------------------------------------------------------
// Section 6.2: accelerated component sets and Figure 13's incremental order.
// ---------------------------------------------------------------------------

/// The components Section 6.2 accelerates: the top datacenter taxes
/// (compression, RPC, protobuf), the top system taxes (STL, OS), and each
/// platform's top core-compute operations (read, filter, compute,
/// compaction, write, aggregation, misc. core operations).
#[must_use]
pub fn accelerated_categories(platform: Platform) -> Vec<CpuCategory> {
    let mut cats: Vec<CpuCategory> = vec![
        DatacenterTax::Compression.into(),
        DatacenterTax::Rpc.into(),
        DatacenterTax::Protobuf.into(),
        SystemTax::Stl.into(),
        SystemTax::OperatingSystems.into(),
    ];
    cats.extend(
        platform_core_targets(platform)
            .iter()
            .map(|&op| CpuCategory::Core(op)),
    );
    cats
}

/// The per-platform core-compute acceleration targets of Section 6.2.
#[must_use]
pub fn platform_core_targets(platform: Platform) -> &'static [CoreComputeOp] {
    match platform {
        Platform::Spanner | Platform::BigTable => &[
            CoreComputeOp::Read,
            CoreComputeOp::Compaction,
            CoreComputeOp::Write,
            CoreComputeOp::MiscCore,
        ],
        Platform::BigQuery => &[
            CoreComputeOp::Filter,
            CoreComputeOp::Compute,
            CoreComputeOp::Aggregate,
            CoreComputeOp::MiscCore,
        ],
    }
}

/// Figure 13's x-axis: the order in which accelerators are incrementally
/// added — datacenter taxes first, then system taxes, then core compute.
#[must_use]
pub fn incremental_accelerator_order(platform: Platform) -> Vec<CpuCategory> {
    accelerated_categories(platform)
}

/// The average bytes a query would offload to an off-chip accelerator
/// (Figure 13's `B_i`). Databases move small per-query payloads; BigQuery
/// moves orders of magnitude more (Section 6.3.2).
#[must_use]
pub fn average_query_payload(platform: Platform) -> Bytes {
    match platform {
        Platform::Spanner => Bytes::from_kib(64.0),
        Platform::BigTable => Bytes::from_kib(32.0),
        Platform::BigQuery => Bytes::from_gib(60.0),
    }
}

// ---------------------------------------------------------------------------
// Figure 2 / Figures 9–10: query populations.
// ---------------------------------------------------------------------------

/// One synthetic query class used to build a platform's population
/// (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryClass {
    /// Descriptive name (e.g. `"compaction-blocked-tail"`).
    pub name: &'static str,
    /// Fraction of the platform's queries in this class.
    pub weight: f64,
    /// CPU time as a multiple of the platform base time.
    pub cpu: f64,
    /// Distributed-storage IO time, same unit.
    pub io: f64,
    /// Remote-work time, same unit.
    pub remote: f64,
    /// How strongly this class's CPU breakdown tilts toward the accelerated
    /// categories (1.0 = fleet-average composition). CPU-heavy point lookups
    /// concentrate in accelerable code; see `tilted_breakdown`.
    pub tilt: f64,
}

/// The platform's base query time scale: databases serve millisecond
/// transactions, the analytics engine second-scale scans (the Figure 2
/// end-to-end scales).
#[must_use]
pub fn base_query_time(platform: Platform) -> Seconds {
    match platform {
        Platform::Spanner => Seconds::from_millis(10.0),
        Platform::BigTable => Seconds::from_millis(5.0),
        Platform::BigQuery => Seconds::new(10.0),
    }
}

/// The synthetic query classes for one platform.
///
/// Calibration targets (all at 64x lockstep on-chip acceleration of the
/// Section 6.2 component set, matching Figure 9):
///
/// - per-query peak speedup with deps removed: ~9.1x / ~3,223x / ~8.5x;
/// - aggregate speedup with deps retained: ~2.0x / ~2.2x / ~1.4x;
/// - Figure 2 group mix: >60% CPU-heavy queries for the databases, 10%
///   CPU-heavy for BigQuery.
#[must_use]
pub fn query_classes(platform: Platform) -> Vec<QueryClass> {
    match platform {
        Platform::Spanner => vec![
            QueryClass {
                name: "point-txn-compute",
                weight: 0.02,
                cpu: 1.0,
                io: 0.0,
                remote: 0.0,
                tilt: 6.5,
            },
            QueryClass {
                name: "txn-cpu-heavy",
                weight: 0.60,
                cpu: 0.8,
                io: 0.12,
                remote: 0.08,
                tilt: 3.0,
            },
            QueryClass {
                name: "storage-io-heavy",
                weight: 0.12,
                cpu: 0.3,
                io: 0.55,
                remote: 0.15,
                tilt: 1.0,
            },
            QueryClass {
                name: "consensus-remote-heavy",
                weight: 0.14,
                cpu: 0.3,
                io: 0.15,
                remote: 0.55,
                tilt: 1.0,
            },
            QueryClass {
                name: "mixed-others",
                weight: 0.12,
                cpu: 0.5,
                io: 0.25,
                remote: 0.25,
                tilt: 1.5,
            },
        ],
        Platform::BigTable => vec![
            QueryClass {
                name: "inmem-read-compute",
                weight: 0.02,
                cpu: 1.0,
                io: 0.0,
                remote: 0.0,
                tilt: 2.5,
            },
            QueryClass {
                name: "kv-cpu-heavy",
                weight: 0.63,
                cpu: 0.8,
                io: 0.1,
                remote: 0.1,
                tilt: 2.5,
            },
            QueryClass {
                name: "sstable-io-heavy",
                weight: 0.10,
                cpu: 0.3,
                io: 0.55,
                remote: 0.15,
                tilt: 1.0,
            },
            QueryClass {
                name: "compaction-remote-heavy",
                weight: 0.145,
                cpu: 0.3,
                io: 0.1,
                remote: 0.6,
                tilt: 1.0,
            },
            QueryClass {
                name: "mixed-others",
                weight: 0.10,
                cpu: 0.5,
                io: 0.25,
                remote: 0.25,
                tilt: 1.5,
            },
            // Rare compaction-blocked query: removing its remote wait exposes
            // a ~3,000x co-design opportunity (the BigTable peak of Fig. 9).
            QueryClass {
                name: "compaction-blocked-tail",
                weight: 0.005,
                cpu: 0.05,
                io: 0.5,
                remote: 18.0,
                tilt: 3.0,
            },
        ],
        Platform::BigQuery => vec![
            QueryClass {
                name: "cached-compute-query",
                weight: 0.01,
                cpu: 1.0,
                io: 0.0,
                remote: 0.0,
                tilt: 4.0,
            },
            QueryClass {
                name: "analytic-cpu-heavy",
                weight: 0.09,
                cpu: 0.7,
                io: 0.2,
                remote: 0.1,
                tilt: 2.0,
            },
            QueryClass {
                name: "scan-io-heavy",
                weight: 0.42,
                cpu: 0.35,
                io: 0.47,
                remote: 0.18,
                tilt: 1.0,
            },
            QueryClass {
                name: "shuffle-remote-heavy",
                weight: 0.33,
                cpu: 0.35,
                io: 0.13,
                remote: 0.52,
                tilt: 1.0,
            },
            QueryClass {
                name: "mixed-others",
                weight: 0.15,
                cpu: 0.45,
                io: 0.28,
                remote: 0.27,
                tilt: 1.5,
            },
        ],
    }
}

/// Returns `fleet` with the shares of `boosted` categories multiplied by
/// `tilt` and the whole breakdown renormalized to the same total.
///
/// This models query classes whose CPU time concentrates more (tilt > 1) in
/// the accelerable categories than the fleet average does; the shares being
/// tilted are the Figure 5 fleet-average composition.
#[must_use]
pub fn tilted_breakdown(fleet: &CpuBreakdown, boosted: &[CpuCategory], tilt: f64) -> CpuBreakdown {
    let total = fleet.total();
    let weighted: Vec<(CpuCategory, f64)> = fleet
        .iter()
        .map(|(cat, t)| {
            let factor = if boosted.contains(&cat) { tilt } else { 1.0 };
            (cat, t.as_secs() * factor)
        })
        .collect();
    let sum: f64 = weighted.iter().map(|(_, w)| w).sum();
    if sum == 0.0 {
        return fleet.clone();
    }
    weighted
        .into_iter()
        .map(|(cat, w)| (cat, total.scaled(w / sum)))
        .collect()
}

/// Builds the calibrated query population for one platform (Figure 2) —
/// the input to the Figure 9 and Figure 10 sweeps.
#[must_use]
pub fn query_population(platform: Platform) -> QueryPopulation {
    let fleet = fleet_breakdown(platform);
    let accel = accelerated_categories(platform);
    let base = base_query_time(platform).as_secs();
    let records: Vec<QueryRecord> = query_classes(platform)
        .into_iter()
        .map(|class| {
            let cpu = Seconds::new(class.cpu * base);
            let breakdown = tilted_breakdown(&fleet, &accel, class.tilt).rescaled(cpu);
            QueryRecord {
                cpu,
                io: Seconds::new(class.io * base),
                remote: Seconds::new(class.remote * base),
                overlap: crate::accel::OverlapFactor::SYNCHRONOUS,
                breakdown,
                weight: class.weight,
            }
        })
        .collect();
    // audit: allow(panic, the static class tables for every platform are non-empty)
    QueryPopulation::new(records).expect("paper query classes are non-empty")
}

/// The full calibrated profile for one platform: the Figure 2 population
/// plus the Figure 5 fleet breakdown.
#[must_use]
pub fn platform_profile(platform: Platform) -> PlatformProfile {
    PlatformProfile::new(
        platform,
        query_population(platform),
        fleet_breakdown(platform),
    )
}

// ---------------------------------------------------------------------------
// Tables 6–7: microarchitectural statistics.
// ---------------------------------------------------------------------------

/// IPC and misses-per-kilo-instruction statistics (Tables 6 and 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroarchStats {
    /// Instructions per cycle.
    pub ipc: f64,
    /// Branch MPKI.
    pub br: f64,
    /// L1 instruction-cache MPKI.
    pub l1i: f64,
    /// L2 instruction MPKI.
    pub l2i: f64,
    /// Last-level-cache MPKI.
    pub llc: f64,
    /// Instruction-TLB MPKI.
    pub itlb: f64,
    /// Data-TLB load MPKI.
    pub dtlb_ld: f64,
}

/// Table 6: whole-platform statistics.
#[must_use]
pub fn table6(platform: Platform) -> MicroarchStats {
    match platform {
        Platform::Spanner => MicroarchStats {
            ipc: 0.7,
            br: 5.5,
            l1i: 19.0,
            l2i: 9.7,
            llc: 1.2,
            itlb: 0.5,
            dtlb_ld: 2.3,
        },
        Platform::BigTable => MicroarchStats {
            ipc: 0.7,
            br: 6.2,
            l1i: 18.2,
            l2i: 11.5,
            llc: 1.3,
            itlb: 0.5,
            dtlb_ld: 2.9,
        },
        Platform::BigQuery => MicroarchStats {
            ipc: 1.2,
            br: 3.5,
            l1i: 11.3,
            l2i: 4.6,
            llc: 1.0,
            itlb: 0.4,
            dtlb_ld: 1.8,
        },
    }
}

/// Table 7: per-broad-category statistics.
#[must_use]
pub fn table7(platform: Platform, broad: crate::category::BroadCategory) -> MicroarchStats {
    use crate::category::BroadCategory::*;
    match (platform, broad) {
        (Platform::Spanner, CoreCompute) => MicroarchStats {
            ipc: 0.9,
            br: 5.4,
            l1i: 12.4,
            l2i: 4.2,
            llc: 0.6,
            itlb: 0.2,
            dtlb_ld: 0.8,
        },
        (Platform::Spanner, DatacenterTax) => MicroarchStats {
            ipc: 0.6,
            br: 5.5,
            l1i: 16.7,
            l2i: 8.0,
            llc: 1.0,
            itlb: 0.6,
            dtlb_ld: 2.0,
        },
        (Platform::Spanner, SystemTax) => MicroarchStats {
            ipc: 0.7,
            br: 5.5,
            l1i: 21.6,
            l2i: 11.8,
            llc: 1.4,
            itlb: 0.4,
            dtlb_ld: 2.7,
        },
        (Platform::BigTable, CoreCompute) => MicroarchStats {
            ipc: 0.6,
            br: 5.2,
            l1i: 9.6,
            l2i: 4.2,
            llc: 1.0,
            itlb: 0.2,
            dtlb_ld: 1.3,
        },
        (Platform::BigTable, DatacenterTax) => MicroarchStats {
            ipc: 0.6,
            br: 5.3,
            l1i: 14.7,
            l2i: 8.4,
            llc: 1.2,
            itlb: 0.5,
            dtlb_ld: 2.1,
        },
        (Platform::BigTable, SystemTax) => MicroarchStats {
            ipc: 0.7,
            br: 6.9,
            l1i: 21.9,
            l2i: 14.7,
            llc: 1.4,
            itlb: 0.5,
            dtlb_ld: 3.6,
        },
        (Platform::BigQuery, CoreCompute) => MicroarchStats {
            ipc: 1.4,
            br: 2.0,
            l1i: 1.1,
            l2i: 0.4,
            llc: 0.3,
            itlb: 0.1,
            dtlb_ld: 0.6,
        },
        (Platform::BigQuery, DatacenterTax) => MicroarchStats {
            ipc: 1.0,
            br: 3.8,
            l1i: 13.6,
            l2i: 3.4,
            llc: 1.1,
            itlb: 0.6,
            dtlb_ld: 2.2,
        },
        (Platform::BigQuery, SystemTax) => MicroarchStats {
            ipc: 1.0,
            br: 3.5,
            l1i: 10.8,
            l2i: 6.0,
            llc: 1.1,
            itlb: 0.2,
            dtlb_ld: 1.7,
        },
    }
}

// ---------------------------------------------------------------------------
// Figure 15: published prior accelerators.
// ---------------------------------------------------------------------------

/// A published accelerator used in the Figure 15 comparison.
///
/// The paper takes "the accelerators with the largest published speedup for
/// their respective operations" and zeroes their setup times for uniformity.
/// The exact scalar values are not printed in the paper; the values here are
/// estimates from the cited publications and are recorded as such in
/// EXPERIMENTS.md. The qualitative result the figure shows — holistic
/// synchronous acceleration of 1.5x–1.7x, with chaining bottlenecked by the
/// modest memory-allocation speedup — is preserved.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorAccelerator {
    /// Short name (e.g. `"Mallacc"`).
    pub name: &'static str,
    /// Citation in the paper's bibliography.
    pub reference: &'static str,
    /// Which components it accelerates.
    pub targets: Vec<CpuCategory>,
    /// Published speedup on those components.
    pub speedup: f64,
}

/// The Figure 15 accelerator roster, in the figure's x-axis order.
#[must_use]
pub fn prior_accelerators(platform: Platform) -> Vec<PriorAccelerator> {
    vec![
        PriorAccelerator {
            name: "CompressionAcc",
            reference: "Abali et al., IBM POWER9/z15 [6]",
            targets: vec![DatacenterTax::Compression.into()],
            speedup: 62.0,
        },
        PriorAccelerator {
            name: "Mallacc",
            reference: "Kanev et al. [29]",
            targets: vec![DatacenterTax::MemAllocation.into()],
            speedup: 1.8,
        },
        PriorAccelerator {
            name: "ProtoAcc",
            reference: "Karandikar et al. [30]",
            targets: vec![DatacenterTax::Protobuf.into()],
            speedup: 6.2,
        },
        PriorAccelerator {
            name: "Cerebros",
            reference: "Pourhabibi et al. [43]",
            targets: vec![DatacenterTax::Rpc.into()],
            speedup: 10.0,
        },
        PriorAccelerator {
            name: "Q100-class DPU",
            reference: "Wu et al. [64]",
            targets: platform_core_targets(platform)
                .iter()
                .map(|&op| op.into())
                .collect(),
            speedup: 50.0,
        },
    ]
}

// ---------------------------------------------------------------------------
// Table 8: model validation constants.
// ---------------------------------------------------------------------------

/// The measured RISC-V RTL numbers of Table 8 (microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table8 {
    /// Protobuf serialization CPU time `t_sub`.
    pub proto_tsub_us: f64,
    /// Protobuf accelerator speedup `s_sub`.
    pub proto_speedup: f64,
    /// Protobuf accelerator setup time `t_setup`.
    pub proto_setup_us: f64,
    /// SHA3 hashing CPU time `t_sub`.
    pub sha3_tsub_us: f64,
    /// SHA3 accelerator speedup `s_sub`.
    pub sha3_speedup: f64,
    /// SHA3 accelerator setup time `t_setup`.
    pub sha3_setup_us: f64,
    /// Non-accelerated CPU time `t_sub` (message init, threading, etc.).
    pub nacc_cpu_us: f64,
    /// Measured chained execution time.
    pub measured_chained_us: f64,
    /// Model-estimated chained execution time (Eqs. 9–10).
    pub modeled_chained_us: f64,
}

/// Table 8 as published.
pub const TABLE8: Table8 = Table8 {
    proto_tsub_us: 518.3,
    proto_speedup: 31.0,
    proto_setup_us: 1488.9,
    sha3_tsub_us: 1112.5,
    sha3_speedup: 51.3,
    sha3_setup_us: 4.1,
    nacc_cpu_us: 4948.7,
    measured_chained_us: 6075.7,
    modeled_chained_us: 6459.3,
};

// ---------------------------------------------------------------------------
// Headline percentages (Sections 1 and 4).
// ---------------------------------------------------------------------------

/// Section 4.2: share of all end-to-end time spent on compute / remote work /
/// IO across platforms (48% / 22% / 30%).
pub const OVERALL_E2E_SHARES: [f64; 3] = [0.48, 0.22, 0.30];

/// Figure 9 published peaks without non-CPU dependencies, per platform.
pub const FIG9_PEAKS_NO_DEPS: [f64; 3] = [9.1, 3223.6, 8.5];

/// Figure 9 published upper bounds with dependencies retained, per platform.
pub const FIG9_BOUNDS_WITH_DEPS: [f64; 3] = [2.0, 2.2, 1.4];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::Speedup;
    use crate::category::BroadCategory;
    use crate::plan::{AccelerationPlan, InvocationModel};
    use crate::profile::QueryGroup;

    #[test]
    fn table1_matches_paper_text() {
        // "approx. 10x to 110x" SSD-to-HDD.
        for p in Platform::ALL {
            let r = storage_ratio(p);
            assert!(r.hdd_per_ssd() > 9.0 && r.hdd_per_ssd() < 115.0, "{p}");
        }
        assert_eq!(storage_ratio(Platform::BigQuery).hdd, 777.0);
    }

    #[test]
    fn broad_shares_sum_to_one_and_sit_in_ranges() {
        for p in Platform::ALL {
            let [cc, dct, st] = broad_shares(p);
            assert!((cc + dct + st - 1.0).abs() < 1e-9);
            assert!((0.18..=0.36).contains(&cc), "{p} core compute {cc}");
            assert!((0.32..=0.40).contains(&dct), "{p} dc tax {dct}");
            assert!((0.32..=0.42).contains(&st), "{p} sys tax {st}");
        }
    }

    #[test]
    fn fine_shares_normalized() {
        for p in Platform::ALL {
            let cc: f64 = core_compute_shares(p).iter().map(|(_, s)| s).sum();
            let dct: f64 = datacenter_tax_shares(p).iter().map(|(_, s)| s).sum();
            let st: f64 = system_tax_shares(p).iter().map(|(_, s)| s).sum();
            assert!((cc - 1.0).abs() < 1e-9, "{p} core {cc}");
            assert!((dct - 1.0).abs() < 1e-9, "{p} dct {dct}");
            assert!((st - 1.0).abs() < 1e-9, "{p} st {st}");
        }
    }

    #[test]
    fn datacenter_tax_anchors() {
        // RPC 23 / 37 / 11.
        assert_eq!(
            datacenter_tax_shares(Platform::Spanner)[0],
            (DatacenterTax::Rpc, 0.23)
        );
        let bt: Vec<_> = datacenter_tax_shares(Platform::BigTable);
        assert!(bt.contains(&(DatacenterTax::Rpc, 0.37)));
        let bq: Vec<_> = datacenter_tax_shares(Platform::BigQuery);
        assert!(bq.contains(&(DatacenterTax::Rpc, 0.11)));
    }

    #[test]
    fn fleet_breakdown_reproduces_figure3() {
        for p in Platform::ALL {
            let fleet = fleet_breakdown(p);
            let [cc, dct, st] = broad_shares(p);
            assert!((fleet.broad_share(BroadCategory::CoreCompute) - cc).abs() < 1e-6);
            assert!((fleet.broad_share(BroadCategory::DatacenterTax) - dct).abs() < 1e-6);
            assert!((fleet.broad_share(BroadCategory::SystemTax) - st).abs() < 1e-6);
            assert!((fleet.total().as_secs() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tilt_preserves_total_and_boosts_targets() {
        let fleet = fleet_breakdown(Platform::Spanner);
        let targets = accelerated_categories(Platform::Spanner);
        let tilted = tilted_breakdown(&fleet, &targets, 3.0);
        assert!((tilted.total().as_secs() - fleet.total().as_secs()).abs() < 1e-9);
        let orig_cov: f64 = targets.iter().map(|&c| fleet.share(c)).sum();
        let tilt_cov: f64 = targets.iter().map(|&c| tilted.share(c)).sum();
        assert!(tilt_cov > orig_cov);
        // tilt 1.0 is the identity.
        let same = tilted_breakdown(&fleet, &targets, 1.0);
        for (cat, t) in fleet.iter() {
            assert!((same.time(cat).as_secs() - t.as_secs()).abs() < 1e-12);
        }
    }

    #[test]
    fn population_weights_sum_to_one() {
        for p in Platform::ALL {
            let w: f64 = query_classes(p).iter().map(|c| c.weight).sum();
            assert!((w - 1.0).abs() < 1e-9, "{p} weights {w}");
        }
    }

    #[test]
    fn figure2_group_mix() {
        // Databases: >60% CPU-heavy queries. BigQuery: 10%.
        for p in [Platform::Spanner, Platform::BigTable] {
            let pop = query_population(p);
            let rows = pop.e2e_breakdown();
            let cpu_row = rows
                .iter()
                .find(|r| r.group == QueryGroup::CpuHeavy)
                .unwrap();
            assert!(
                cpu_row.query_fraction > 0.60,
                "{p}: {}",
                cpu_row.query_fraction
            );
        }
        let bq = query_population(Platform::BigQuery).e2e_breakdown();
        let cpu_row = bq.iter().find(|r| r.group == QueryGroup::CpuHeavy).unwrap();
        assert!((cpu_row.query_fraction - 0.10).abs() < 0.02);
    }

    fn lockstep_plan(p: Platform, s: f64) -> AccelerationPlan {
        AccelerationPlan::uniform(
            accelerated_categories(p),
            Speedup::new(s).unwrap(),
            InvocationModel::Synchronous,
        )
        .unwrap()
    }

    #[test]
    fn figure9_peaks_without_dependencies() {
        // Peak per-query co-design speedup at 64x: ~9.1x / ~3,223x / ~8.5x.
        let expectations = [
            (Platform::Spanner, 7.0, 12.0),
            (Platform::BigTable, 2000.0, 5000.0),
            (Platform::BigQuery, 7.0, 11.0),
        ];
        for (p, lo, hi) in expectations {
            let pop = query_population(p);
            let plan = lockstep_plan(p, 64.0);
            let peak = pop
                .records()
                .iter()
                .map(|r| {
                    let orig = r.end_to_end();
                    let stripped = r.phases().without_dependencies();
                    let acc = plan.evaluate(&stripped, &r.breakdown).accelerated_e2e;
                    orig.as_secs() / acc.as_secs()
                })
                .fold(0.0, f64::max);
            assert!(peak > lo && peak < hi, "{p} peak {peak}");
        }
    }

    #[test]
    fn figure9_bounds_with_dependencies() {
        // Aggregate speedups with deps retained: ~2.0x / ~2.2x / ~1.4x.
        let expectations = [
            (Platform::Spanner, 1.7, 2.3),
            (Platform::BigTable, 1.8, 2.5),
            (Platform::BigQuery, 1.2, 1.6),
        ];
        for (p, lo, hi) in expectations {
            let s = query_population(p).aggregate_speedup(&lockstep_plan(p, 64.0));
            assert!(s > lo && s < hi, "{p} aggregate {s}");
        }
    }

    #[test]
    fn prior_accelerators_cover_expected_taxes() {
        let accs = prior_accelerators(Platform::Spanner);
        assert_eq!(accs.len(), 5);
        let mallacc = accs.iter().find(|a| a.name == "Mallacc").unwrap();
        assert!(mallacc.speedup < 2.0, "Mallacc is the chain bottleneck");
        assert_eq!(
            prior_accelerators(Platform::BigQuery)
                .last()
                .unwrap()
                .targets
                .len(),
            4
        );
    }

    #[test]
    fn table8_equations_reproduce_modeled_value() {
        // t_chnd = max setups + max(t_sub/s); t'_cpu = t_chnd + t_nacc.
        let t8 = TABLE8;
        let chnd = t8.proto_setup_us.max(t8.sha3_setup_us)
            + (t8.proto_tsub_us / t8.proto_speedup).max(t8.sha3_tsub_us / t8.sha3_speedup);
        let modeled = chnd + t8.nacc_cpu_us;
        assert!(
            (modeled - t8.modeled_chained_us).abs() < 0.5,
            "modeled {modeled}"
        );
        // Paper: 6.1% difference from measured.
        let diff = (modeled - t8.measured_chained_us) / t8.measured_chained_us;
        assert!((diff - 0.061).abs() < 0.005, "diff {diff}");
    }

    #[test]
    fn microarch_tables_expected_relationships() {
        // Databases have ~2x the front-end MPKI of the analytics engine.
        let sp = table6(Platform::Spanner);
        let bq = table6(Platform::BigQuery);
        assert!(sp.l1i / bq.l1i > 1.5);
        assert!(sp.br / bq.br > 1.5);
        // BigQuery core compute has the highest IPC of all rows.
        let bq_cc = table7(Platform::BigQuery, BroadCategory::CoreCompute);
        assert!(bq_cc.ipc >= 1.4);
        for p in Platform::ALL {
            for b in BroadCategory::ALL {
                let s = table7(p, b);
                assert!(s.ipc > 0.0 && s.ipc < 4.0);
            }
        }
    }
}
