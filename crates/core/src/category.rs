//! The cycle-accounting taxonomy of the paper (Section 5, Tables 2–5).
//!
//! CPU cycles are attributed to exactly one *fine-grained* category
//! ([`CpuCategory`]), which rolls up into one of three *broad* categories
//! ([`BroadCategory`]): core compute, datacenter taxes, and system taxes.

use std::fmt;

/// The three production platforms characterized by the paper (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Platform {
    /// Globally-distributed, synchronously-replicated SQL database.
    Spanner,
    /// Cluster-level key-value (NoSQL) storage system.
    BigTable,
    /// Distributed multi-tenant analytics query engine.
    BigQuery,
}

impl Platform {
    /// All three platforms, in the paper's presentation order.
    pub const ALL: [Platform; 3] = [Platform::Spanner, Platform::BigTable, Platform::BigQuery];

    /// True for the two transactional database platforms (Spanner, BigTable).
    ///
    /// The paper repeatedly contrasts "the databases" against the analytics
    /// engine (e.g. Section 5.6).
    #[must_use]
    pub fn is_database(self) -> bool {
        matches!(self, Platform::Spanner | Platform::BigTable)
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Platform::Spanner => "Spanner",
            Platform::BigTable => "BigTable",
            Platform::BigQuery => "BigQuery",
        };
        f.write_str(name)
    }
}

/// Broad cycle categories of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BroadCategory {
    /// Essential business logic of the platform (Tables 4 and 5).
    CoreCompute,
    /// Key functions necessary to run hyperscale workloads (Table 2).
    DatacenterTax,
    /// Overheads shared among many production binaries (Table 3).
    SystemTax,
}

impl BroadCategory {
    /// All broad categories in presentation order.
    pub const ALL: [BroadCategory; 3] = [
        BroadCategory::CoreCompute,
        BroadCategory::DatacenterTax,
        BroadCategory::SystemTax,
    ];
}

impl fmt::Display for BroadCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BroadCategory::CoreCompute => "Core Compute",
            BroadCategory::DatacenterTax => "Datacenter Taxes",
            BroadCategory::SystemTax => "System Taxes",
        };
        f.write_str(name)
    }
}

/// Datacenter-tax fine categories (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatacenterTax {
    /// (De)compression operations.
    Compression,
    /// Hashing, security tools and infrastructure.
    Cryptography,
    /// `mem{cpy,move}` and `copy_user` operations.
    DataMovement,
    /// Memory reservation operations (`malloc` and friends).
    MemAllocation,
    /// (De)serialization setup and operations.
    Protobuf,
    /// Remote procedure calls.
    Rpc,
}

impl DatacenterTax {
    /// All datacenter taxes in Table 2 order.
    pub const ALL: [DatacenterTax; 6] = [
        DatacenterTax::Compression,
        DatacenterTax::Cryptography,
        DatacenterTax::DataMovement,
        DatacenterTax::MemAllocation,
        DatacenterTax::Protobuf,
        DatacenterTax::Rpc,
    ];
}

impl fmt::Display for DatacenterTax {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DatacenterTax::Compression => "Compression",
            DatacenterTax::Cryptography => "Cryptography",
            DatacenterTax::DataMovement => "Data Movement",
            DatacenterTax::MemAllocation => "Mem. Allocation",
            DatacenterTax::Protobuf => "Protobuf",
            DatacenterTax::Rpc => "RPC",
        };
        f.write_str(name)
    }
}

/// System-tax fine categories (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemTax {
    /// Error handling (checksums, etc.).
    Edac,
    /// IO backend client compute.
    FileSystems,
    /// Non-data-movement memory operations.
    OtherMemoryOps,
    /// Thread management overheads.
    Multithreading,
    /// Packet, web, and server processing.
    Networking,
    /// Kernel, syscalls, time operations.
    OperatingSystems,
    /// Standard fleet-wide libraries.
    Stl,
    /// Uncategorized system operations.
    MiscSystem,
}

impl SystemTax {
    /// All system taxes in Table 3 order.
    pub const ALL: [SystemTax; 8] = [
        SystemTax::Edac,
        SystemTax::FileSystems,
        SystemTax::OtherMemoryOps,
        SystemTax::Multithreading,
        SystemTax::Networking,
        SystemTax::OperatingSystems,
        SystemTax::Stl,
        SystemTax::MiscSystem,
    ];
}

impl fmt::Display for SystemTax {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SystemTax::Edac => "EDAC",
            SystemTax::FileSystems => "File Systems",
            SystemTax::OtherMemoryOps => "Other Memory Ops.",
            SystemTax::Multithreading => "Multithreading",
            SystemTax::Networking => "Networking",
            SystemTax::OperatingSystems => "Operating Systems",
            SystemTax::Stl => "STL",
            SystemTax::MiscSystem => "Misc. System Taxes",
        };
        f.write_str(name)
    }
}

/// Core-compute fine categories for the database platforms (Table 4) and the
/// analytics engine (Table 5), merged into one enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoreComputeOp {
    // Table 4: Spanner and BigTable.
    /// Read operations.
    Read,
    /// Write/commit operations.
    Write,
    /// Revision control / cleanup.
    Compaction,
    /// Replication and consensus protocols.
    Consensus,
    /// SQL-like compute.
    Query,
    // Table 5: BigQuery.
    /// Compute/data movement for hash/sort aggregations.
    Aggregate,
    /// Column-wise operations on pre-grouped aggregates.
    Compute,
    /// Structured element field access.
    Destructure,
    /// Scan/selection of rows.
    Filter,
    /// Compute/data movement of hash/sort joins.
    Join,
    /// Construction of in-memory tables.
    Materialize,
    /// Retrieval of individual table columns.
    Project,
    /// Non-aggregation/join sort operations.
    Sort,
    // Shared long tail.
    /// Long tail of labeled miscellaneous compute.
    MiscCore,
    /// Unlabeled compute.
    Uncategorized,
}

impl CoreComputeOp {
    /// The database-platform categories of Table 4 (plus the shared tail).
    pub const DATABASE_OPS: [CoreComputeOp; 7] = [
        CoreComputeOp::Read,
        CoreComputeOp::Write,
        CoreComputeOp::Compaction,
        CoreComputeOp::Consensus,
        CoreComputeOp::Query,
        CoreComputeOp::MiscCore,
        CoreComputeOp::Uncategorized,
    ];

    /// The analytics-engine categories of Table 5 (plus the shared tail).
    pub const ANALYTICS_OPS: [CoreComputeOp; 10] = [
        CoreComputeOp::Aggregate,
        CoreComputeOp::Compute,
        CoreComputeOp::Destructure,
        CoreComputeOp::Filter,
        CoreComputeOp::Join,
        CoreComputeOp::Materialize,
        CoreComputeOp::Project,
        CoreComputeOp::Sort,
        CoreComputeOp::MiscCore,
        CoreComputeOp::Uncategorized,
    ];

    /// The fine categories the paper breaks down for `platform` in Figure 4.
    #[must_use]
    pub fn for_platform(platform: Platform) -> &'static [CoreComputeOp] {
        if platform.is_database() {
            &Self::DATABASE_OPS
        } else {
            &Self::ANALYTICS_OPS
        }
    }
}

impl fmt::Display for CoreComputeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CoreComputeOp::Read => "Read",
            CoreComputeOp::Write => "Write",
            CoreComputeOp::Compaction => "Compaction",
            CoreComputeOp::Consensus => "Consensus",
            CoreComputeOp::Query => "Query",
            CoreComputeOp::Aggregate => "Aggregate",
            CoreComputeOp::Compute => "Compute",
            CoreComputeOp::Destructure => "Destructure",
            CoreComputeOp::Filter => "Filter",
            CoreComputeOp::Join => "Join",
            CoreComputeOp::Materialize => "Materialize",
            CoreComputeOp::Project => "Project",
            CoreComputeOp::Sort => "Sort",
            CoreComputeOp::MiscCore => "Misc. Core Ops.",
            CoreComputeOp::Uncategorized => "Uncategorized",
        };
        f.write_str(name)
    }
}

/// A fine-grained CPU cycle category: the unit of accounting in Figures 4–6
/// and the unit of acceleration in the sea-of-accelerators model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CpuCategory {
    /// A core-compute operation.
    Core(CoreComputeOp),
    /// A datacenter tax.
    Datacenter(DatacenterTax),
    /// A system tax.
    System(SystemTax),
}

impl CpuCategory {
    /// The broad category this fine category rolls up into.
    #[must_use]
    pub fn broad(self) -> BroadCategory {
        match self {
            CpuCategory::Core(_) => BroadCategory::CoreCompute,
            CpuCategory::Datacenter(_) => BroadCategory::DatacenterTax,
            CpuCategory::System(_) => BroadCategory::SystemTax,
        }
    }
}

impl fmt::Display for CpuCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuCategory::Core(op) => write!(f, "{op}"),
            CpuCategory::Datacenter(tax) => write!(f, "{tax}"),
            CpuCategory::System(tax) => write!(f, "{tax}"),
        }
    }
}

impl From<CoreComputeOp> for CpuCategory {
    fn from(op: CoreComputeOp) -> Self {
        CpuCategory::Core(op)
    }
}

impl From<DatacenterTax> for CpuCategory {
    fn from(tax: DatacenterTax) -> Self {
        CpuCategory::Datacenter(tax)
    }
}

impl From<SystemTax> for CpuCategory {
    fn from(tax: SystemTax) -> Self {
        CpuCategory::System(tax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_classification() {
        assert!(Platform::Spanner.is_database());
        assert!(Platform::BigTable.is_database());
        assert!(!Platform::BigQuery.is_database());
        assert_eq!(Platform::ALL.len(), 3);
    }

    #[test]
    fn broad_rollup() {
        assert_eq!(
            CpuCategory::from(CoreComputeOp::Read).broad(),
            BroadCategory::CoreCompute
        );
        assert_eq!(
            CpuCategory::from(DatacenterTax::Protobuf).broad(),
            BroadCategory::DatacenterTax
        );
        assert_eq!(
            CpuCategory::from(SystemTax::Stl).broad(),
            BroadCategory::SystemTax
        );
    }

    #[test]
    fn per_platform_core_ops_match_tables() {
        assert_eq!(CoreComputeOp::for_platform(Platform::Spanner).len(), 7);
        assert_eq!(CoreComputeOp::for_platform(Platform::BigTable).len(), 7);
        assert_eq!(CoreComputeOp::for_platform(Platform::BigQuery).len(), 10);
        assert!(CoreComputeOp::for_platform(Platform::BigQuery).contains(&CoreComputeOp::Filter));
        assert!(!CoreComputeOp::for_platform(Platform::Spanner).contains(&CoreComputeOp::Filter));
    }

    #[test]
    fn display_names_match_paper_tables() {
        assert_eq!(DatacenterTax::MemAllocation.to_string(), "Mem. Allocation");
        assert_eq!(SystemTax::Edac.to_string(), "EDAC");
        assert_eq!(SystemTax::OtherMemoryOps.to_string(), "Other Memory Ops.");
        assert_eq!(CoreComputeOp::MiscCore.to_string(), "Misc. Core Ops.");
        assert_eq!(Platform::BigQuery.to_string(), "BigQuery");
        assert_eq!(BroadCategory::DatacenterTax.to_string(), "Datacenter Taxes");
    }

    #[test]
    fn category_ordering_is_stable_for_map_keys() {
        let mut cats = [
            CpuCategory::from(SystemTax::Stl),
            CpuCategory::from(CoreComputeOp::Read),
            CpuCategory::from(DatacenterTax::Rpc),
        ];
        cats.sort();
        assert_eq!(cats[0].broad(), BroadCategory::CoreCompute);
    }
}
