//! Model-invariant auditor: cross-checks the analytical model against the
//! identities the paper's equations guarantee by construction.
//!
//! Every check here is a *redundant* computation: the model already produces
//! these quantities, and this module re-derives the constraints they must
//! satisfy — cycle-breakdown shares summing to one, the broad tax categories
//! partitioning total CPU time (Figure 3), Equation 1 end-to-end times
//! staying between the fully-overlapped and fully-serial extremes, and the
//! Eq. 9 / Eq. 10 aggregate speedups staying at or above 1x and growing
//! monotonically with the offloaded fraction of CPU work.
//!
//! The checks run in three places:
//!
//! 1. `debug_assert!` hooks in [`crate::model`] and [`crate::study`] — free
//!    in release builds, always-on in the test suite;
//! 2. the [`audit`] umbrella, which sweeps one whole [`QueryPopulation`];
//! 3. a test that runs [`audit`] over every calibrated platform population
//!    from [`crate::paper`].

use std::fmt;

use crate::accel::{AcceleratorSpec, OverlapFactor, Speedup};
use crate::category::{BroadCategory, CpuCategory};
use crate::component::CpuBreakdown;
use crate::plan::{AccelerationPlan, InvocationModel};
use crate::profile::QueryPopulation;
use crate::units::Seconds;

/// Relative tolerance for share sums, partitions, and monotonicity. The
/// model accumulates tens of `f64` terms, so the slack is generous relative
/// to machine epsilon while still catching any real modelling error.
pub const TOLERANCE: f64 = 1e-9;

/// One violated model invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Short name of the invariant that failed (e.g. `"share-sum"`).
    pub invariant: &'static str,
    /// Human-readable description of the observed inconsistency.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// The error returned by [`audit`]: every invariant violation found.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditFailure {
    /// The violations, in discovery order.
    pub violations: Vec<Violation>,
}

impl fmt::Display for AuditFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} model invariant(s) violated:", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AuditFailure {}

/// True when an Equation 1 result lies within its algebraic bounds:
/// `max(t_cpu, t_dep) <= t_e2e <= t_cpu + t_dep` for any overlap factor.
///
/// This is the [`crate::model::end_to_end_time`] `debug_assert!` hook.
#[must_use]
pub fn e2e_within_bounds(cpu: Seconds, dep: Seconds, e2e: Seconds) -> bool {
    let lo = cpu.max(dep).as_secs();
    let hi = (cpu + dep).as_secs();
    let t = e2e.as_secs();
    let slack = TOLERANCE * (hi + 1.0);
    t >= lo - slack && t <= hi + slack
}

/// Checks one CPU-time breakdown:
///
/// - fine-category shares sum to `1 ± ε` (and each lies in `[0, 1]`);
/// - the three broad categories of Figure 3 partition the total time, and
///   their shares also sum to `1 ± ε`.
///
/// An empty (zero-total) breakdown is vacuously consistent.
#[must_use]
pub fn check_breakdown(breakdown: &CpuBreakdown) -> Vec<Violation> {
    let mut violations = Vec::new();
    let total = breakdown.total().as_secs();
    if total <= 0.0 {
        return violations;
    }

    let mut share_sum = 0.0;
    for category in breakdown.categories() {
        let share = breakdown.share(category);
        if !(0.0 - TOLERANCE..=1.0 + TOLERANCE).contains(&share) {
            violations.push(Violation {
                invariant: "share-range",
                detail: format!("category {category:?} has share {share} outside [0, 1]"),
            });
        }
        share_sum += share;
    }
    if (share_sum - 1.0).abs() > TOLERANCE {
        violations.push(Violation {
            invariant: "share-sum",
            detail: format!("fine-category shares sum to {share_sum}, expected 1"),
        });
    }

    let mut broad_sum = 0.0;
    let mut broad_share_sum = 0.0;
    for broad in BroadCategory::ALL {
        broad_sum += breakdown.broad_time(broad).as_secs();
        broad_share_sum += breakdown.broad_share(broad);
    }
    if (broad_sum - total).abs() > TOLERANCE * (total + 1.0) {
        violations.push(Violation {
            invariant: "broad-partition",
            detail: format!(
                "broad-category times sum to {broad_sum}, but the breakdown total is {total}"
            ),
        });
    }
    if (broad_share_sum - 1.0).abs() > TOLERANCE {
        violations.push(Violation {
            invariant: "broad-share-sum",
            detail: format!("broad-category shares sum to {broad_share_sum}, expected 1"),
        });
    }
    violations
}

/// Checks a speedup curve sampled over an increasing driver variable
/// (per-accelerator speedup, offload fraction, ...): every value must be at
/// least 1x (the Eq. 9 / Eq. 10 lower bound for loss-free accelerators) and
/// the curve must be monotonically non-decreasing wherever the driver is.
///
/// `points` are `(driver, aggregate speedup)` pairs; `label` names the curve
/// in violation messages.
#[must_use]
pub fn check_speedup_curve(label: &str, points: &[(f64, f64)]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for &(x, y) in points {
        if y < 1.0 - TOLERANCE {
            violations.push(Violation {
                invariant: "speedup-bound",
                detail: format!("{label}: speedup {y} at driver {x} is below the 1x bound"),
            });
        }
    }
    for pair in points.windows(2) {
        let (x0, y0) = pair[0];
        let (x1, y1) = pair[1];
        if x1 >= x0 && y1 < y0 - TOLERANCE * (y0.abs() + 1.0) {
            violations.push(Violation {
                invariant: "speedup-monotone",
                detail: format!(
                    "{label}: speedup falls from {y0} to {y1} as the driver rises from {x0} to {x1}"
                ),
            });
        }
    }
    violations
}

/// Checks that the aggregate speedup is monotone in the *offload fraction*:
/// accelerating a strictly larger set of CPU components with identical
/// loss-free accelerators can never slow the population down, under both the
/// synchronous (Eq. 9) and chained (Eq. 10) invocation models.
#[must_use]
pub fn check_offload_monotonicity(
    population: &QueryPopulation,
    categories: &[CpuCategory],
    speedup: Speedup,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let denom = categories.len().max(1);
    for invocation in [InvocationModel::Synchronous, InvocationModel::Chained] {
        let mut points = Vec::with_capacity(categories.len() + 1);
        for offloaded in 0..=categories.len() {
            let mut plan = AccelerationPlan::new(invocation);
            for &category in &categories[..offloaded] {
                plan.assign(category, AcceleratorSpec::ideal(speedup));
            }
            // The offload fraction is the share of components accelerated.
            let fraction = divide(offloaded, denom);
            points.push((fraction, population.aggregate_speedup(&plan)));
        }
        let label = match invocation {
            InvocationModel::Chained => "Eq. 10 chained offload sweep",
            _ => "Eq. 9 synchronous offload sweep",
        };
        violations.extend(check_speedup_curve(label, &points));
    }
    violations
}

/// Checks a whole population:
///
/// - every record's breakdown passes [`check_breakdown`], and its CPU time
///   matches the breakdown total;
/// - every record's Equation 1 end-to-end time sits within bounds;
/// - the weighted fleet breakdown passes [`check_breakdown`];
/// - the Figure 2 group rows partition the population (query fractions sum
///   to 1) and, for fully synchronous populations, each populated row's
///   CPU/remote/IO shares sum to 1.
#[must_use]
pub fn check_population(population: &QueryPopulation) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut all_synchronous = true;

    for (idx, record) in population.records().iter().enumerate() {
        if record.overlap != OverlapFactor::SYNCHRONOUS {
            all_synchronous = false;
        }
        if record.weight <= 0.0 {
            violations.push(Violation {
                invariant: "weight-positive",
                detail: format!("record {idx} has non-positive weight {}", record.weight),
            });
        }
        let cpu = record.cpu.as_secs();
        let accounted = record.breakdown.total().as_secs();
        if (cpu - accounted).abs() > TOLERANCE * (cpu + 1.0) {
            violations.push(Violation {
                invariant: "breakdown-total",
                detail: format!(
                    "record {idx}: breakdown accounts for {accounted}s of {cpu}s CPU time"
                ),
            });
        }
        violations.extend(check_breakdown(&record.breakdown));
        let phases = record.phases();
        if !e2e_within_bounds(record.cpu, record.dep(), phases.end_to_end()) {
            violations.push(Violation {
                invariant: "e2e-bounds",
                detail: format!(
                    "record {idx}: Eq. 1 end-to-end time {}s escapes [max(t_cpu, t_dep), t_cpu + t_dep]",
                    phases.end_to_end().as_secs()
                ),
            });
        }
    }

    violations.extend(check_breakdown(&population.fleet_breakdown()));

    let rows = population.e2e_breakdown();
    // The last row is the synthetic "Overall" row; the group rows before it
    // must partition the population by weight.
    if let Some((_overall, groups)) = rows.split_last() {
        if !population.records().is_empty() {
            let fraction_sum: f64 = groups.iter().map(|r| r.query_fraction).sum();
            if (fraction_sum - 1.0).abs() > TOLERANCE {
                violations.push(Violation {
                    invariant: "group-partition",
                    detail: format!("group query fractions sum to {fraction_sum}, expected 1"),
                });
            }
        }
        for row in &rows {
            let phase_sum = row.cpu_share + row.remote_share + row.io_share;
            let populated = row.query_fraction > 0.0 && phase_sum > 0.0;
            // With overlap the disjoint-phase identity no longer holds, but
            // the phases can never cover *less* than the end-to-end time.
            let consistent = if all_synchronous {
                (phase_sum - 1.0).abs() <= TOLERANCE
            } else {
                phase_sum >= 1.0 - TOLERANCE
            };
            if populated && !consistent {
                violations.push(Violation {
                    invariant: "phase-partition",
                    detail: format!(
                        "group {} has CPU/remote/IO shares summing to {phase_sum}",
                        row.group
                    ),
                });
            }
        }
    }
    violations
}

/// The umbrella auditor: runs every structural check over `population` plus
/// the Eq. 9 / Eq. 10 offload-fraction monotonicity sweep at the Figure 13
/// per-accelerator speedup.
///
/// # Errors
///
/// Returns an [`AuditFailure`] listing every violated invariant.
pub fn audit(population: &QueryPopulation) -> Result<(), AuditFailure> {
    let mut violations = check_population(population);
    match Speedup::new(crate::study::FEATURE_STUDY_SPEEDUP) {
        Ok(speedup) => {
            let categories = population.fleet_breakdown().categories();
            violations.extend(check_offload_monotonicity(population, &categories, speedup));
        }
        Err(err) => violations.push(Violation {
            invariant: "speedup-constant",
            detail: format!("FEATURE_STUDY_SPEEDUP is not a valid speedup: {err}"),
        }),
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(AuditFailure { violations })
    }
}

/// Integer division into a fraction without tripping the units lint on
/// intermediate names.
fn divide(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        // Both operands are small component counts, exactly representable.
        // audit: allow(cast, component counts are tiny and exactly representable in f64)
        numerator as f64 / denominator as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::Platform;
    use crate::paper;
    use crate::units::Seconds;

    #[test]
    fn every_calibrated_population_audits_clean() {
        for platform in Platform::ALL {
            let population = paper::query_population(platform);
            if let Err(failure) = audit(&population) {
                panic!("{platform:?} population violates model invariants:\n{failure}");
            }
        }
    }

    #[test]
    fn every_calibrated_fleet_breakdown_is_consistent() {
        for platform in Platform::ALL {
            let violations = check_breakdown(&paper::fleet_breakdown(platform));
            assert!(violations.is_empty(), "{platform:?}: {violations:?}");
        }
    }

    #[test]
    fn e2e_bounds_accept_the_overlap_extremes() {
        let cpu = Seconds::new(2.0);
        let dep = Seconds::new(3.0);
        // Fully synchronous: t = 5. Fully asynchronous: t = 3.
        assert!(e2e_within_bounds(cpu, dep, Seconds::new(5.0)));
        assert!(e2e_within_bounds(cpu, dep, Seconds::new(3.0)));
        assert!(!e2e_within_bounds(cpu, dep, Seconds::new(5.5)));
        assert!(!e2e_within_bounds(cpu, dep, Seconds::new(2.5)));
    }

    #[test]
    fn speedup_curve_catches_bound_and_monotonicity_breaks() {
        let ok = check_speedup_curve("test", &[(0.0, 1.0), (0.5, 1.4), (1.0, 2.0)]);
        assert!(ok.is_empty(), "{ok:?}");

        let below = check_speedup_curve("test", &[(0.0, 0.8)]);
        assert_eq!(below.len(), 1);
        assert_eq!(below[0].invariant, "speedup-bound");

        let falling = check_speedup_curve("test", &[(0.0, 2.0), (1.0, 1.5)]);
        assert_eq!(falling.len(), 1);
        assert_eq!(falling[0].invariant, "speedup-monotone");
    }

    #[test]
    fn offload_monotonicity_holds_on_calibrated_populations() {
        for platform in Platform::ALL {
            let population = paper::query_population(platform);
            let categories = paper::accelerated_categories(platform);
            let speedup = Speedup::new(8.0).expect("8x is a valid speedup");
            let violations = check_offload_monotonicity(&population, &categories, speedup);
            assert!(violations.is_empty(), "{platform:?}: {violations:?}");
        }
    }

    #[test]
    fn audit_failure_reports_every_violation() {
        let failure = AuditFailure {
            violations: vec![
                Violation {
                    invariant: "share-sum",
                    detail: "shares sum to 0.9".into(),
                },
                Violation {
                    invariant: "speedup-bound",
                    detail: "speedup 0.5".into(),
                },
            ],
        };
        let text = failure.to_string();
        assert!(text.contains("2 model invariant(s)"));
        assert!(text.contains("share-sum"));
        assert!(text.contains("speedup-bound"));
    }
}
