//! Acceleration plans: which components get which accelerators, and how the
//! accelerated CPU time composes (Equations 2–9).
//!
//! An [`AccelerationPlan`] maps fine-grained [`CpuCategory`] components to
//! [`AcceleratorSpec`]s under an [`InvocationModel`]:
//!
//! - **Synchronous** — every accelerator invocation serializes with the core
//!   (`g_sub_i = 1`), so `t_acc = Σ t'_sub_i`.
//! - **Asynchronous** — all invocations overlap (`g_sub_i = 0`), so
//!   `t_acc = max(t'_sub_i)` (Eq. 6).
//! - **PerComponent** — each spec's own `g_sub_i` is honored (Eq. 5).
//! - **Chained** — all assigned accelerators form a pipeline (Eqs. 9–12).

use std::collections::BTreeMap;

use crate::accel::{AcceleratorSpec, OverlapFactor, Placement, Speedup};
use crate::category::CpuCategory;
use crate::chained::{chain_estimate, ChainStage};
use crate::component::CpuBreakdown;
use crate::error::ModelError;
use crate::model::{accelerated_end_to_end_time, speedup_ratio, QueryPhases};
use crate::units::{Bytes, Seconds};

/// How accelerator invocations relate to one another (Section 6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InvocationModel {
    /// Strict serial dependency between the core and every accelerator.
    #[default]
    Synchronous,
    /// Ideal case: all accelerator invocations execute in parallel.
    Asynchronous,
    /// Honor each component's own overlap factor `g_sub_i`.
    PerComponent,
    /// Accelerators stream to one another without core coordination.
    Chained,
}

impl std::fmt::Display for InvocationModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            InvocationModel::Synchronous => "Sync",
            InvocationModel::Asynchronous => "Async",
            InvocationModel::PerComponent => "PerComponent",
            InvocationModel::Chained => "Chained",
        };
        f.write_str(name)
    }
}

/// Per-component outcome of a plan evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentEstimate {
    /// The component.
    pub category: CpuCategory,
    /// Original time `t_sub_i`.
    pub original: Seconds,
    /// Accelerated time `t'_sub_i` (with penalty; Eq. 7).
    pub accelerated: Seconds,
    /// The invocation penalty `t_pen_i` (Eq. 8).
    pub penalty: Seconds,
}

/// The accelerated CPU time and its decomposition (Equations 3–12).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuEstimate {
    /// `t_acc` — combined accelerated-component time (Eq. 5), or `t_chnd`
    /// for a chained plan (Eq. 10).
    pub accelerated: Seconds,
    /// `t_nacc` — total time of components left on the CPU (Eq. 4), plus any
    /// CPU time the breakdown did not cover.
    pub unaccelerated: Seconds,
    /// `t'_cpu = t_acc + t_nacc` (Eq. 3 / Eq. 9).
    pub total: Seconds,
    /// Per-accelerated-component detail.
    pub components: Vec<ComponentEstimate>,
}

/// Full end-to-end outcome of applying a plan to one query.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOutcome {
    /// Original end-to-end time (Eq. 1).
    pub original_e2e: Seconds,
    /// Accelerated end-to-end time (Eq. 2).
    pub accelerated_e2e: Seconds,
    /// `original_e2e / accelerated_e2e`.
    pub speedup: f64,
    /// The accelerated-CPU decomposition behind Eq. 2.
    pub cpu: CpuEstimate,
}

/// A sea-of-accelerators configuration: component → accelerator assignments
/// plus the invocation model.
///
/// # Examples
///
/// ```
/// use hsdp_core::accel::Speedup;
/// use hsdp_core::category::{CpuCategory, DatacenterTax};
/// use hsdp_core::component::CpuBreakdown;
/// use hsdp_core::model::QueryPhases;
/// use hsdp_core::plan::{AccelerationPlan, InvocationModel};
/// use hsdp_core::units::Seconds;
///
/// let compression = CpuCategory::from(DatacenterTax::Compression);
/// let rpc = CpuCategory::from(DatacenterTax::Rpc);
/// let plan = AccelerationPlan::uniform(
///     [compression, rpc],
///     Speedup::new(8.0)?,
///     InvocationModel::Synchronous,
/// )?;
/// let breakdown = CpuBreakdown::from_shares(
///     Seconds::new(1.0),
///     &[(compression, 0.5), (rpc, 0.5)],
/// )?;
/// let outcome = plan.evaluate(&QueryPhases::cpu_only(Seconds::new(1.0)), &breakdown);
/// assert!(outcome.speedup > 7.9);
/// # Ok::<(), hsdp_core::error::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AccelerationPlan {
    assignments: BTreeMap<CpuCategory, AcceleratorSpec>,
    invocation: InvocationModel,
}

impl AccelerationPlan {
    /// An empty plan (no accelerators): evaluation reproduces the baseline.
    #[must_use]
    pub fn new(invocation: InvocationModel) -> Self {
        AccelerationPlan {
            assignments: BTreeMap::new(),
            invocation,
        }
    }

    /// A plan assigning the *same* ideal on-chip accelerator (given speedup,
    /// zero penalties) to every listed component — the lockstep assumption of
    /// the paper's Section 6.2 limit study.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateComponent`] if a category repeats.
    pub fn uniform<I>(
        categories: I,
        speedup: Speedup,
        invocation: InvocationModel,
    ) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = CpuCategory>,
    {
        let mut plan = AccelerationPlan::new(invocation);
        for category in categories {
            plan.try_assign(category, AcceleratorSpec::ideal(speedup))?;
        }
        Ok(plan)
    }

    /// Assigns an accelerator to a component, replacing any previous
    /// assignment.
    pub fn assign(&mut self, category: CpuCategory, spec: AcceleratorSpec) {
        self.assignments.insert(category, spec);
    }

    /// Assigns an accelerator to a component, failing on duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateComponent`] if the category is already
    /// assigned.
    pub fn try_assign(
        &mut self,
        category: CpuCategory,
        spec: AcceleratorSpec,
    ) -> Result<(), ModelError> {
        if self.assignments.contains_key(&category) {
            return Err(ModelError::DuplicateComponent {
                category: category.to_string(),
            });
        }
        self.assignments.insert(category, spec);
        Ok(())
    }

    /// The accelerator assigned to `category`, if any.
    #[must_use]
    pub fn assignment(&self, category: CpuCategory) -> Option<&AcceleratorSpec> {
        self.assignments.get(&category)
    }

    /// Number of assigned accelerators (the paper's `U`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True if no accelerators are assigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The invocation model.
    #[must_use]
    pub fn invocation(&self) -> InvocationModel {
        self.invocation
    }

    /// Returns a copy with a different invocation model — handy for the
    /// Figure 13 comparison, which evaluates the same assignments under
    /// sync/async/chained execution.
    #[must_use]
    pub fn with_invocation(&self, invocation: InvocationModel) -> AccelerationPlan {
        AccelerationPlan {
            assignments: self.assignments.clone(),
            invocation,
        }
    }

    /// Returns a copy with every assignment's placement replaced.
    #[must_use]
    pub fn with_placement(&self, placement: Placement) -> AccelerationPlan {
        AccelerationPlan {
            assignments: self
                .assignments
                .iter()
                .map(|(c, s)| (*c, s.with_placement(placement)))
                .collect(),
            invocation: self.invocation,
        }
    }

    /// Returns a copy with every assignment's setup time replaced (the
    /// Figure 14 setup-time sweep).
    #[must_use]
    pub fn with_setup(&self, setup: Seconds) -> AccelerationPlan {
        AccelerationPlan {
            assignments: self
                .assignments
                .iter()
                .map(|(c, s)| (*c, s.with_setup(setup)))
                .collect(),
            invocation: self.invocation,
        }
    }

    /// Returns a copy with every assignment's offload payload replaced (used
    /// with off-chip placement in Figure 13).
    #[must_use]
    pub fn with_payload(&self, payload: Bytes) -> AccelerationPlan {
        AccelerationPlan {
            assignments: self
                .assignments
                .iter()
                .map(|(c, s)| (*c, s.with_payload(payload)))
                .collect(),
            invocation: self.invocation,
        }
    }

    /// Returns a copy with every assignment's speedup replaced (the lockstep
    /// sweep of Figures 9–10).
    #[must_use]
    pub fn with_uniform_speedup(&self, speedup: Speedup) -> AccelerationPlan {
        AccelerationPlan {
            assignments: self
                .assignments
                .iter()
                .map(|(c, s)| (*c, s.with_speedup(speedup)))
                .collect(),
            invocation: self.invocation,
        }
    }

    /// Iterates over `(category, spec)` assignments in category order.
    pub fn iter(&self) -> impl Iterator<Item = (CpuCategory, &AcceleratorSpec)> + '_ {
        self.assignments.iter().map(|(c, s)| (*c, s))
    }

    /// The effective overlap factor for a component under this plan's
    /// invocation model.
    fn effective_overlap(&self, spec: &AcceleratorSpec) -> f64 {
        match self.invocation {
            InvocationModel::Synchronous => OverlapFactor::SYNCHRONOUS.value(),
            InvocationModel::Asynchronous => OverlapFactor::ASYNCHRONOUS.value(),
            InvocationModel::PerComponent | InvocationModel::Chained => spec.overlap().value(),
        }
    }

    /// The accelerated CPU time `t'_cpu` for a query whose CPU time divides
    /// per `breakdown` (Equations 3–9).
    ///
    /// CPU time present in `total_cpu` but not covered by the breakdown is
    /// treated as unaccelerated (it joins `t_nacc`). If the breakdown's total
    /// exceeds `total_cpu`, the breakdown is authoritative.
    #[must_use]
    pub fn accelerated_cpu(&self, total_cpu: Seconds, breakdown: &CpuBreakdown) -> CpuEstimate {
        let covered = breakdown.total();
        let uncovered = total_cpu - covered; // saturating

        let mut unaccelerated = uncovered;
        let mut components = Vec::new();
        let mut chain_stages = Vec::new();
        let mut weighted_sum = Seconds::ZERO; // Σ g_sub_i * t'_sub_i
        let mut largest = Seconds::ZERO; // t_lsub (Eq. 6)

        for (category, original) in breakdown.iter() {
            match self.assignments.get(&category) {
                None => unaccelerated += original,
                Some(spec) => {
                    let accelerated = spec.accelerated_time(original);
                    components.push(ComponentEstimate {
                        category,
                        original,
                        accelerated,
                        penalty: spec.penalty(),
                    });
                    if self.invocation == InvocationModel::Chained {
                        chain_stages.push(ChainStage {
                            category,
                            original,
                            spec: *spec,
                        });
                    } else {
                        let g = self.effective_overlap(spec);
                        weighted_sum += accelerated.scaled(g);
                        largest = largest.max(accelerated);
                    }
                }
            }
        }

        let accelerated = if self.invocation == InvocationModel::Chained {
            match chain_estimate(&chain_stages) {
                Ok(est) => est.chained_time,
                Err(ModelError::EmptyChain) => Seconds::ZERO,
                // audit: allow(panic, EmptyChain is chain_estimate's only error variant and is handled above)
                Err(_) => unreachable!("chain_estimate only fails on empty chains"),
            }
        } else if components.is_empty() {
            Seconds::ZERO
        } else {
            // Eq. 5: t_acc = max(Σ g_i * t'_i, t_lsub).
            weighted_sum.max(largest)
        };

        CpuEstimate {
            accelerated,
            unaccelerated,
            total: accelerated + unaccelerated,
            components,
        }
    }

    /// Applies the plan to one query: Equation 2 end-to-end, plus speedup.
    #[must_use]
    pub fn evaluate(&self, phases: &QueryPhases, breakdown: &CpuBreakdown) -> PlanOutcome {
        let cpu = self.accelerated_cpu(phases.cpu(), breakdown);
        let original_e2e = phases.end_to_end();
        let accelerated_e2e = accelerated_end_to_end_time(cpu.total, phases);
        PlanOutcome {
            original_e2e,
            accelerated_e2e,
            speedup: speedup_ratio(original_e2e, accelerated_e2e),
            cpu,
        }
    }
}

impl FromIterator<(CpuCategory, AcceleratorSpec)> for AccelerationPlan {
    /// Collects assignments under the default (synchronous) invocation model,
    /// keeping the *last* spec for a repeated category.
    fn from_iter<I: IntoIterator<Item = (CpuCategory, AcceleratorSpec)>>(iter: I) -> Self {
        let mut plan = AccelerationPlan::new(InvocationModel::Synchronous);
        for (category, spec) in iter {
            plan.assign(category, spec);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::{CoreComputeOp, DatacenterTax, SystemTax};

    fn proto() -> CpuCategory {
        CpuCategory::from(DatacenterTax::Protobuf)
    }
    fn compression() -> CpuCategory {
        CpuCategory::from(DatacenterTax::Compression)
    }
    fn read() -> CpuCategory {
        CpuCategory::from(CoreComputeOp::Read)
    }
    fn os() -> CpuCategory {
        CpuCategory::from(SystemTax::OperatingSystems)
    }

    fn even_breakdown() -> CpuBreakdown {
        CpuBreakdown::from_shares(
            Seconds::new(1.0),
            &[
                (proto(), 0.25),
                (compression(), 0.25),
                (read(), 0.25),
                (os(), 0.25),
            ],
        )
        .unwrap()
    }

    #[test]
    fn empty_plan_reproduces_baseline() {
        let plan = AccelerationPlan::new(InvocationModel::Synchronous);
        let phases = QueryPhases::cpu_only(Seconds::new(1.0));
        let outcome = plan.evaluate(&phases, &even_breakdown());
        assert!((outcome.speedup - 1.0).abs() < 1e-9);
        assert!(outcome.cpu.components.is_empty());
    }

    #[test]
    fn synchronous_sums_accelerated_components() {
        // Accelerate protobuf + compression at 5x, sync: t'_cpu =
        // (0.25 + 0.25)/5 + 0.5 = 0.6.
        let plan = AccelerationPlan::uniform(
            [proto(), compression()],
            Speedup::new(5.0).unwrap(),
            InvocationModel::Synchronous,
        )
        .unwrap();
        let est = plan.accelerated_cpu(Seconds::new(1.0), &even_breakdown());
        assert!((est.total.as_secs() - 0.6).abs() < 1e-9);
        assert_eq!(est.components.len(), 2);
    }

    #[test]
    fn asynchronous_takes_max_component() {
        // Same accel set, async: t_acc = max(0.05, 0.05) = 0.05.
        let plan = AccelerationPlan::uniform(
            [proto(), compression()],
            Speedup::new(5.0).unwrap(),
            InvocationModel::Asynchronous,
        )
        .unwrap();
        let est = plan.accelerated_cpu(Seconds::new(1.0), &even_breakdown());
        assert!((est.accelerated.as_secs() - 0.05).abs() < 1e-9);
        assert!((est.total.as_secs() - 0.55).abs() < 1e-9);
    }

    #[test]
    fn async_never_slower_than_sync() {
        for s in [1.0, 2.0, 8.0, 64.0] {
            let sync = AccelerationPlan::uniform(
                [proto(), compression(), read(), os()],
                Speedup::new(s).unwrap(),
                InvocationModel::Synchronous,
            )
            .unwrap();
            let async_ = sync.with_invocation(InvocationModel::Asynchronous);
            let b = even_breakdown();
            let t_sync = sync.accelerated_cpu(Seconds::new(1.0), &b).total;
            let t_async = async_.accelerated_cpu(Seconds::new(1.0), &b).total;
            assert!(t_async <= t_sync);
        }
    }

    #[test]
    fn chained_matches_async_with_zero_penalties() {
        // With zero penalties, Eq. 10 reduces to Eq. 6.
        let plan = AccelerationPlan::uniform(
            [proto(), compression()],
            Speedup::new(5.0).unwrap(),
            InvocationModel::Chained,
        )
        .unwrap();
        let async_plan = plan.with_invocation(InvocationModel::Asynchronous);
        let b = even_breakdown();
        let chained = plan.accelerated_cpu(Seconds::new(1.0), &b);
        let asynced = async_plan.accelerated_cpu(Seconds::new(1.0), &b);
        assert!((chained.total.as_secs() - asynced.total.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn chained_amortizes_setup_versus_sync() {
        let setup = Seconds::from_millis(10.0);
        let mut plan = AccelerationPlan::new(InvocationModel::Synchronous);
        let spec = AcceleratorSpec::builder(Speedup::new(8.0).unwrap())
            .setup(setup)
            .build();
        plan.assign(proto(), spec);
        plan.assign(compression(), spec);
        let chained = plan.with_invocation(InvocationModel::Chained);
        let b = even_breakdown();
        let t_sync = plan.accelerated_cpu(Seconds::new(1.0), &b).total;
        let t_chained = chained.accelerated_cpu(Seconds::new(1.0), &b).total;
        // Sync pays the setup twice; chained pays max once.
        assert!(t_sync.as_secs() > t_chained.as_secs() + 0.009);
    }

    #[test]
    fn per_component_honors_spec_overlap() {
        let mut plan = AccelerationPlan::new(InvocationModel::PerComponent);
        let half = OverlapFactor::new(0.5).unwrap();
        plan.assign(
            proto(),
            AcceleratorSpec::ideal(Speedup::new(1.0).unwrap()).with_overlap(half),
        );
        plan.assign(
            compression(),
            AcceleratorSpec::ideal(Speedup::new(1.0).unwrap()).with_overlap(half),
        );
        let est = plan.accelerated_cpu(Seconds::new(1.0), &even_breakdown());
        // Σ g t' = 0.5*(0.25+0.25) = 0.25; t_lsub = 0.25 → max = 0.25.
        assert!((est.accelerated.as_secs() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn uncovered_cpu_time_stays_unaccelerated() {
        let plan = AccelerationPlan::uniform(
            [proto()],
            Speedup::new(1000.0).unwrap(),
            InvocationModel::Synchronous,
        )
        .unwrap();
        // Breakdown only covers 0.5s of a 2s CPU time.
        let b = CpuBreakdown::from_times([(proto(), Seconds::new(0.5))]).unwrap();
        let est = plan.accelerated_cpu(Seconds::new(2.0), &b);
        assert!((est.unaccelerated.as_secs() - 1.5).abs() < 1e-9);
        assert!(est.total.as_secs() > 1.5);
        assert!(est.total.as_secs() < 1.6);
    }

    #[test]
    fn off_chip_payload_can_cause_slowdown() {
        // The BigQuery phenomenon of Section 6.3.2: large payloads over a
        // 4 GB/s link make off-chip acceleration a net loss.
        let plan = AccelerationPlan::uniform(
            [proto()],
            Speedup::new(8.0).unwrap(),
            InvocationModel::Synchronous,
        )
        .unwrap()
        .with_placement(Placement::off_chip_pcie_gen5())
        .with_payload(Bytes::from_gib(10.0));
        let b = CpuBreakdown::from_times([(proto(), Seconds::new(1.0))]).unwrap();
        let phases = QueryPhases::cpu_only(Seconds::new(1.0));
        let outcome = plan.evaluate(&phases, &b);
        assert!(outcome.speedup < 1.0, "speedup {}", outcome.speedup);
    }

    #[test]
    fn try_assign_rejects_duplicates() {
        let mut plan = AccelerationPlan::new(InvocationModel::Synchronous);
        let spec = AcceleratorSpec::ideal(Speedup::new(2.0).unwrap());
        plan.try_assign(proto(), spec).unwrap();
        assert!(plan.try_assign(proto(), spec).is_err());
        assert_eq!(plan.len(), 1);
        assert!(plan.assignment(proto()).is_some());
        assert!(plan.assignment(read()).is_none());
    }

    #[test]
    fn evaluate_full_outcome() {
        let plan = AccelerationPlan::uniform(
            [proto(), compression(), read(), os()],
            Speedup::new(64.0).unwrap(),
            InvocationModel::Synchronous,
        )
        .unwrap();
        let phases = QueryPhases::new(
            Seconds::new(1.0),
            Seconds::new(1.0),
            OverlapFactor::SYNCHRONOUS,
        );
        let outcome = plan.evaluate(&phases, &even_breakdown());
        assert!((outcome.original_e2e.as_secs() - 2.0).abs() < 1e-9);
        // t'_cpu = 1/64; e2e' = 1/64 + 1.
        assert!((outcome.accelerated_e2e.as_secs() - (1.0 / 64.0 + 1.0)).abs() < 1e-9);
        assert!(outcome.speedup > 1.9 && outcome.speedup < 2.0);
    }
}
