//! The sea-of-accelerators limit studies (Section 6).
//!
//! Each function here regenerates the data behind one of the paper's
//! evaluation figures:
//!
//! - [`speedup_sweep`] — Figure 9: lockstep per-accelerator speedup sweep,
//!   with and without non-CPU dependencies.
//! - [`grouped_sweep`] — Figure 10: the same sweep split by query group.
//! - [`feature_study`] — Figure 13: sync/async/chained × on/off-chip as
//!   accelerators are added incrementally.
//! - [`setup_sweep`] — Figure 14: sensitivity to accelerator setup time.
//! - [`prior_accelerator_study`] — Figure 15: published accelerators,
//!   individually and combined.

use crate::accel::{AcceleratorSpec, Placement, Speedup};
use crate::category::{CpuCategory, Platform};
use crate::paper;
use crate::plan::{AccelerationPlan, InvocationModel};
use crate::profile::{QueryGroup, QueryPopulation};
use crate::units::{Bytes, Seconds};

/// A named accelerator-system configuration (the four lines of Figure 13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Display name (e.g. `"Sync + Off-Chip"`).
    pub name: &'static str,
    /// Invocation model.
    pub invocation: InvocationModel,
    /// Placement shared by all accelerators in the configuration.
    pub placement: Placement,
}

impl AcceleratorConfig {
    /// The four configurations of Figure 13, in presentation order:
    /// Sync+Off-Chip, Sync+On-Chip, Async+On-Chip, Chained+On-Chip.
    #[must_use]
    pub fn figure13_set() -> [AcceleratorConfig; 4] {
        [
            AcceleratorConfig {
                name: "Sync + Off-Chip",
                invocation: InvocationModel::Synchronous,
                placement: Placement::off_chip_pcie_gen5(),
            },
            AcceleratorConfig {
                name: "Sync + On-Chip",
                invocation: InvocationModel::Synchronous,
                placement: Placement::OnChip,
            },
            AcceleratorConfig {
                name: "Async + On-Chip",
                invocation: InvocationModel::Asynchronous,
                placement: Placement::OnChip,
            },
            AcceleratorConfig {
                name: "Chained + On-Chip",
                invocation: InvocationModel::Chained,
                placement: Placement::OnChip,
            },
        ]
    }
}

/// Builds a plan assigning the same accelerator (speedup, setup, payload,
/// placement) to every category, under the configuration's invocation model
/// — the uniform-accelerator configuration swept in Figures 9 and 10.
#[must_use]
pub fn build_plan(
    categories: &[CpuCategory],
    speedup: Speedup,
    setup: Seconds,
    payload: Bytes,
    config: AcceleratorConfig,
) -> AccelerationPlan {
    let mut plan = AccelerationPlan::new(config.invocation);
    for &category in categories {
        let spec = AcceleratorSpec::builder(speedup)
            .setup(setup)
            .payload(payload)
            .placement(config.placement)
            .build();
        plan.assign(category, spec);
    }
    plan
}

/// One point of a Figure 9-style sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Per-accelerator speedup `s_sub` at this point.
    pub accel_speedup: f64,
    /// Aggregate end-to-end speedup with non-CPU dependencies retained.
    pub with_deps: f64,
    /// Aggregate co-design speedup with dependencies removed.
    pub without_deps: f64,
    /// Peak per-query co-design speedup (the published Figure 9 peaks).
    pub peak_without_deps: f64,
}

/// Figure 9: sweeps the lockstep per-accelerator speedup over `speedups`
/// (the paper uses 1x–64x), evaluating synchronous on-chip acceleration of
/// the Section 6.2 component set with and without non-CPU dependencies.
#[must_use]
pub fn speedup_sweep(
    population: &QueryPopulation,
    categories: &[CpuCategory],
    speedups: &[f64],
) -> Vec<SweepPoint> {
    let points: Vec<SweepPoint> = speedups
        .iter()
        .map(|&s| {
            let plan = build_plan(
                categories,
                // audit: allow(panic, the max(1.0) clamp guarantees a valid speedup)
                Speedup::new(s.max(1.0)).expect("sweep speedups are >= 1"),
                Seconds::ZERO,
                Bytes::ZERO,
                AcceleratorConfig {
                    name: "Sync + On-Chip",
                    invocation: InvocationModel::Synchronous,
                    placement: Placement::OnChip,
                },
            );
            SweepPoint {
                accel_speedup: s,
                with_deps: population.aggregate_speedup(&plan),
                without_deps: population.aggregate_codesign_speedup(&plan),
                peak_without_deps: population.peak_codesign_speedup(&plan),
            }
        })
        .collect();
    debug_assert!(
        {
            let with: Vec<(f64, f64)> = points
                .iter()
                .map(|p| (p.accel_speedup, p.with_deps))
                .collect();
            let without: Vec<(f64, f64)> = points
                .iter()
                .map(|p| (p.accel_speedup, p.without_deps))
                .collect();
            crate::audit::check_speedup_curve("Figure 9 with dependencies", &with).is_empty()
                && crate::audit::check_speedup_curve("Figure 9 co-design", &without).is_empty()
        },
        "Figure 9 sweep violated the Eq. 9 speedup bound or monotonicity"
    );
    points
}

/// The default sweep grid of Figures 9–10 (1x to 64x).
#[must_use]
pub fn default_speedup_grid() -> Vec<f64> {
    vec![1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 40.0, 48.0, 56.0, 64.0]
}

/// One series of the Figure 10 chart: a query group's co-design speedups
/// across the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSweep {
    /// The query group.
    pub group: QueryGroup,
    /// `(accel_speedup, aggregate co-design speedup)` pairs.
    pub points: Vec<(f64, f64)>,
}

/// Figure 10: the Figure 9 sweep split per query group, with remote work and
/// IO removed. Unpopulated groups are omitted.
#[must_use]
pub fn grouped_sweep(
    population: &QueryPopulation,
    categories: &[CpuCategory],
    speedups: &[f64],
) -> Vec<GroupSweep> {
    QueryGroup::ALL
        .iter()
        .filter_map(|&group| {
            let sub = population.group_population(group)?;
            let points = speedups
                .iter()
                .map(|&s| {
                    let plan = build_plan(
                        categories,
                        // audit: allow(panic, the max(1.0) clamp guarantees a valid speedup)
                        Speedup::new(s.max(1.0)).expect("sweep speedups are >= 1"),
                        Seconds::ZERO,
                        Bytes::ZERO,
                        AcceleratorConfig {
                            name: "Sync + On-Chip",
                            invocation: InvocationModel::Synchronous,
                            placement: Placement::OnChip,
                        },
                    );
                    (s, sub.aggregate_codesign_speedup(&plan))
                })
                .collect();
            Some(GroupSweep { group, points })
        })
        .collect()
}

/// One step of the Figure 13 incremental study: the speedup of each
/// configuration once accelerators up to and including `added` are active.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStep {
    /// The accelerator added at this step.
    pub added: CpuCategory,
    /// `(configuration name, aggregate end-to-end speedup)` in
    /// [`AcceleratorConfig::figure13_set`] order.
    pub speedups: Vec<(&'static str, f64)>,
}

/// Per-accelerator speedup used by the Figure 13/14 studies. The paper's
/// setup-time study (Section 6.3.3) fixes 8x per accelerator.
pub const FEATURE_STUDY_SPEEDUP: f64 = 8.0;

/// Figure 13: incrementally adds the platform's accelerators (datacenter
/// taxes, then system taxes, then core compute) and evaluates all four
/// configurations with dependencies retained. Off-chip configurations pay
/// `2 * B_i / BW` per component with `B_i` the platform's average query
/// payload and a PCIe Gen5 (4 GB/s) link.
#[must_use]
pub fn feature_study(platform: Platform, population: &QueryPopulation) -> Vec<FeatureStep> {
    let order = paper::incremental_accelerator_order(platform);
    let payload = paper::average_query_payload(platform);
    // audit: allow(panic, FEATURE_STUDY_SPEEDUP is a compile-time constant >= 1)
    let speedup = Speedup::new(FEATURE_STUDY_SPEEDUP).expect("constant is >= 1");
    let configs = AcceleratorConfig::figure13_set();

    let steps: Vec<FeatureStep> = (1..=order.len())
        .map(|n| {
            let active = &order[..n];
            let speedups = configs
                .iter()
                .map(|&config| {
                    let plan = build_plan(active, speedup, Seconds::ZERO, payload, config);
                    (config.name, population.aggregate_speedup(&plan))
                })
                .collect();
            FeatureStep {
                added: order[n - 1],
                speedups,
            }
        })
        .collect();
    // Off-chip configurations pay a payload round-trip and may legitimately
    // dip below 1x, but the zero-setup on-chip series must be monotone in
    // the offloaded fraction (Eq. 9).
    debug_assert!(
        {
            let on_chip: Vec<(f64, f64)> = steps
                .iter()
                .enumerate()
                .filter_map(|(i, step)| {
                    step.speedups
                        .iter()
                        .find(|(name, _)| *name == "Sync + On-Chip")
                        .map(|&(_, s)| (i as f64, s))
                })
                .collect();
            crate::audit::check_speedup_curve("Figure 13 Sync + On-Chip", &on_chip).is_empty()
        },
        "Figure 13 on-chip series violated Eq. 9 monotonicity in the offload fraction"
    );
    steps
}

/// One point of the Figure 14 setup-time sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupPoint {
    /// The per-accelerator setup time at this point.
    pub setup: Seconds,
    /// `(configuration name, aggregate end-to-end speedup)`.
    pub speedups: Vec<(&'static str, f64)>,
}

/// The setup-time grid of Figure 14 (100 ns to 100 ms).
#[must_use]
pub fn default_setup_grid() -> Vec<Seconds> {
    [1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1]
        .into_iter()
        .map(Seconds::new)
        .collect()
}

/// Figure 14: sweeps the accelerator setup time with the full Section 6.2
/// component set active at 8x per accelerator, for all four configurations.
#[must_use]
pub fn setup_sweep(
    platform: Platform,
    population: &QueryPopulation,
    setups: &[Seconds],
) -> Vec<SetupPoint> {
    let categories = paper::accelerated_categories(platform);
    let payload = paper::average_query_payload(platform);
    // audit: allow(panic, FEATURE_STUDY_SPEEDUP is a compile-time constant >= 1)
    let speedup = Speedup::new(FEATURE_STUDY_SPEEDUP).expect("constant is >= 1");
    let configs = AcceleratorConfig::figure13_set();

    setups
        .iter()
        .map(|&setup| {
            let speedups = configs
                .iter()
                .map(|&config| {
                    let plan = build_plan(&categories, speedup, setup, payload, config);
                    (config.name, population.aggregate_speedup(&plan))
                })
                .collect();
            SetupPoint { setup, speedups }
        })
        .collect()
}

/// One bar group of Figure 15: a prior accelerator evaluated alone (or the
/// full roster combined), under synchronous and chained on-chip execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorAcceleratorPoint {
    /// Accelerator name, or `"Combined"` for the full roster.
    pub name: &'static str,
    /// Aggregate speedup under Sync + On-Chip.
    pub sync_speedup: f64,
    /// Aggregate speedup under Chained + On-Chip.
    pub chained_speedup: f64,
}

/// Figure 15: evaluates each published accelerator individually and then all
/// of them together. Setup times are zeroed, matching the paper ("the metric
/// was not universally reported").
#[must_use]
pub fn prior_accelerator_study(
    platform: Platform,
    population: &QueryPopulation,
) -> Vec<PriorAcceleratorPoint> {
    let roster = paper::prior_accelerators(platform);

    let eval = |accs: &[&paper::PriorAccelerator], name: &'static str| {
        let mut sync_plan = AccelerationPlan::new(InvocationModel::Synchronous);
        for acc in accs {
            let spec = AcceleratorSpec::ideal(
                // audit: allow(panic, the max(1.0) clamp guarantees a valid speedup)
                Speedup::new(acc.speedup.max(1.0)).expect("published speedups are >= 1"),
            );
            for &target in &acc.targets {
                sync_plan.assign(target, spec);
            }
        }
        let chained_plan = sync_plan.with_invocation(InvocationModel::Chained);
        PriorAcceleratorPoint {
            name,
            sync_speedup: population.aggregate_speedup(&sync_plan),
            chained_speedup: population.aggregate_speedup(&chained_plan),
        }
    };

    let mut points: Vec<PriorAcceleratorPoint> =
        roster.iter().map(|acc| eval(&[acc], acc.name)).collect();
    let all: Vec<&paper::PriorAccelerator> = roster.iter().collect();
    points.push(eval(&all, "Combined"));
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{accelerated_categories, query_population};

    #[test]
    fn sweep_is_monotone_in_accel_speedup() {
        for p in Platform::ALL {
            let pop = query_population(p);
            let cats = accelerated_categories(p);
            let points = speedup_sweep(&pop, &cats, &default_speedup_grid());
            for w in points.windows(2) {
                assert!(w[1].with_deps >= w[0].with_deps - 1e-9);
                assert!(w[1].without_deps >= w[0].without_deps - 1e-9);
                assert!(w[1].peak_without_deps >= w[0].peak_without_deps - 1e-9);
            }
            // At 1x there is still a gain without deps (they were removed).
            assert!(points[0].without_deps >= 1.0);
            assert!((points[0].with_deps - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sweep_without_deps_dominates_with_deps() {
        let pop = query_population(Platform::BigQuery);
        let cats = accelerated_categories(Platform::BigQuery);
        for pt in speedup_sweep(&pop, &cats, &default_speedup_grid()) {
            assert!(pt.without_deps >= pt.with_deps - 1e-9);
            assert!(pt.peak_without_deps >= pt.without_deps - 1e-9);
        }
    }

    #[test]
    fn grouped_sweep_covers_populated_groups() {
        let pop = query_population(Platform::Spanner);
        let cats = accelerated_categories(Platform::Spanner);
        let groups = grouped_sweep(&pop, &cats, &[1.0, 64.0]);
        assert_eq!(groups.len(), 4, "all four groups populated for Spanner");
        // IO/remote heavy groups see large initial (1x) co-design gains.
        for gs in &groups {
            let initial = gs.points[0].1;
            match gs.group {
                QueryGroup::IoHeavy | QueryGroup::RemoteWorkHeavy => {
                    assert!(initial > 2.0, "{:?} initial {initial}", gs.group)
                }
                QueryGroup::CpuHeavy => assert!(initial < 2.0),
                QueryGroup::Others => {}
            }
        }
    }

    #[test]
    fn feature_study_shapes() {
        for p in Platform::ALL {
            let pop = query_population(p);
            let steps = feature_study(p, &pop);
            assert_eq!(steps.len(), paper::incremental_accelerator_order(p).len());
            let last = steps.last().unwrap();
            let get = |name: &str| {
                last.speedups
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, s)| *s)
                    .unwrap()
            };
            let sync_off = get("Sync + Off-Chip");
            let sync_on = get("Sync + On-Chip");
            let async_on = get("Async + On-Chip");
            let chained_on = get("Chained + On-Chip");
            // On-chip >= off-chip; async >= sync; chained ~ async (no setup).
            assert!(sync_on >= sync_off - 1e-9, "{p}");
            assert!(async_on >= sync_on - 1e-9, "{p}");
            assert!((chained_on - async_on).abs() / async_on < 0.01, "{p}");
            if p == Platform::BigQuery {
                // Large payloads make off-chip a big slowdown (Section 6.3.2).
                assert!(sync_off < 0.3, "BigQuery off-chip {sync_off}");
                assert!(sync_on > 1.0);
            } else {
                // Databases: small payloads; on-chip uplift is modest (~1.04x).
                let uplift = sync_on / sync_off;
                assert!(uplift > 1.0 && uplift < 1.25, "{p} uplift {uplift}");
            }
        }
    }

    #[test]
    fn feature_study_monotone_in_accelerator_count() {
        let pop = query_population(Platform::Spanner);
        let steps = feature_study(Platform::Spanner, &pop);
        for pair in steps.windows(2) {
            let prev = pair[0]
                .speedups
                .iter()
                .find(|(n, _)| *n == "Sync + On-Chip")
                .unwrap()
                .1;
            let next = pair[1]
                .speedups
                .iter()
                .find(|(n, _)| *n == "Sync + On-Chip")
                .unwrap()
                .1;
            assert!(next >= prev - 1e-9);
        }
    }

    #[test]
    fn setup_sweep_degrades_sync_first() {
        let pop = query_population(Platform::Spanner);
        let points = setup_sweep(Platform::Spanner, &pop, &default_setup_grid());
        let first = &points[0];
        let last = points.last().unwrap();
        let get =
            |pt: &SetupPoint, name: &str| pt.speedups.iter().find(|(n, _)| *n == name).unwrap().1;
        // Tiny setup: sync on-chip speedup is healthy.
        assert!(get(first, "Sync + On-Chip") > 1.5);
        // Huge (100 ms) setup on 10 ms queries: sync collapses below 1x.
        assert!(get(last, "Sync + On-Chip") < 0.1);
        // Async/chained parallelize or amortize setup: strictly better.
        assert!(get(last, "Async + On-Chip") > get(last, "Sync + On-Chip"));
        assert!(get(last, "Chained + On-Chip") > get(last, "Sync + On-Chip"));
    }

    #[test]
    fn prior_accelerators_holistic_range() {
        // Paper: holistic synchronous acceleration yields 1.5x–1.7x, and
        // chaining adds little because Mallacc bottlenecks the pipeline.
        for p in Platform::ALL {
            let pop = query_population(p);
            let points = prior_accelerator_study(p, &pop);
            assert_eq!(points.len(), 6);
            let combined = points.last().unwrap();
            assert_eq!(combined.name, "Combined");
            // The databases sit in the paper's 1.5x–1.7x band; BigQuery's
            // dep-dominated population bounds it lower (see EXPERIMENTS.md).
            let lo = if p == Platform::BigQuery { 1.08 } else { 1.3 };
            assert!(
                combined.sync_speedup > lo && combined.sync_speedup < 2.0,
                "{p} combined sync {}",
                combined.sync_speedup
            );
            // Individual accelerators each achieve less than the combination.
            for pt in &points[..5] {
                assert!(pt.sync_speedup <= combined.sync_speedup + 1e-9);
            }
        }
    }
}
