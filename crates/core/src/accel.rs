//! Accelerator descriptions: speedups, placement, invocation penalties.
//!
//! These types carry the per-component parameters of the analytical model
//! (Figure 7): the acceleration factor `s_sub_i`, the setup time
//! `t_setup_i`, the offload payload `B_i`, the link bandwidth `BW_i`, and the
//! overlap factor `g_sub_i`.

use std::fmt;

use crate::error::ModelError;
use crate::units::{Bandwidth, Bytes, Seconds};

/// A synchronization/overlap factor in `[0, 1]` (the paper's `f` and
/// `g_sub_i`).
///
/// `1` means fully synchronous (no overlap with other work); `0` means fully
/// asynchronous (complete overlap).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct OverlapFactor(f64);

impl OverlapFactor {
    /// Fully synchronous: the component serializes with everything else.
    pub const SYNCHRONOUS: OverlapFactor = OverlapFactor(1.0);
    /// Fully asynchronous: the component overlaps completely.
    pub const ASYNCHRONOUS: OverlapFactor = OverlapFactor(0.0);

    /// Creates an overlap factor.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidOverlapFactor`] unless `value ∈ [0, 1]`.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(OverlapFactor(value))
        } else {
            Err(ModelError::InvalidOverlapFactor { value })
        }
    }

    /// The raw factor.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for OverlapFactor {
    /// Defaults to fully synchronous, the conservative assumption the paper
    /// uses for its baseline studies (Section 6.2).
    fn default() -> Self {
        OverlapFactor::SYNCHRONOUS
    }
}

impl fmt::Display for OverlapFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

/// An acceleration factor `s_sub_i >= 1`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Speedup(f64);

impl Speedup {
    /// No acceleration (`1x`).
    pub const UNITY: Speedup = Speedup(1.0);

    /// Creates a speedup factor.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSpeedup`] unless `factor` is finite and
    /// at least 1.
    pub fn new(factor: f64) -> Result<Self, ModelError> {
        if factor.is_finite() && factor >= 1.0 {
            Ok(Speedup(factor))
        } else {
            Err(ModelError::InvalidSpeedup { value: factor })
        }
    }

    /// The raw factor.
    #[must_use]
    pub fn factor(self) -> f64 {
        self.0
    }

    /// Applies the speedup to an original component time (`t_sub / s_sub`).
    #[must_use]
    pub fn apply(self, original: Seconds) -> Seconds {
        original / self.0
    }
}

impl Default for Speedup {
    fn default() -> Self {
        Speedup::UNITY
    }
}

impl fmt::Display for Speedup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}x", self.0)
    }
}

/// Where an accelerator sits relative to the core (Section 6.1).
///
/// On-chip shared-memory-coherent accelerators see the data in cache/DRAM, so
/// the offload payload `B_i` is treated as 0; off-chip accelerators pay
/// `2 * B_i / BW_i` to round-trip the payload over the link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Shared-memory-coherent accelerator; no offload data movement.
    OnChip,
    /// Uncached accelerator across a link with the given bandwidth.
    OffChip {
        /// Link bandwidth `BW_i` (e.g. PCIe Gen5 at 4 GB/s in the paper).
        link: Bandwidth,
    },
}

impl Placement {
    /// Off-chip over the link the paper assumes (PCIe Gen5, 4 GB/s).
    #[must_use]
    pub fn off_chip_pcie_gen5() -> Placement {
        Placement::OffChip {
            link: Bandwidth::from_gb_per_sec(4.0),
        }
    }

    /// True for on-chip placement.
    #[must_use]
    pub fn is_on_chip(self) -> bool {
        matches!(self, Placement::OnChip)
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Placement::OnChip => write!(f, "On-Chip"),
            Placement::OffChip { link } => write!(f, "Off-Chip({link})"),
        }
    }
}

/// Full description of one accelerator assigned to one CPU component.
///
/// Combines the acceleration factor with the invocation penalty parameters of
/// Equations 7–8 and the overlap factor of Equation 5.
///
/// # Examples
///
/// ```
/// use hsdp_core::accel::{AcceleratorSpec, Placement, Speedup};
/// use hsdp_core::units::{Bytes, Seconds};
///
/// let spec = AcceleratorSpec::builder(Speedup::new(8.0)?)
///     .setup(Seconds::from_micros(1.0))
///     .placement(Placement::off_chip_pcie_gen5())
///     .payload(Bytes::from_kib(64.0))
///     .build();
/// // t'_sub = t_sub / s_sub + t_pen
/// let accelerated = spec.accelerated_time(Seconds::from_millis(1.0));
/// assert!(accelerated.as_secs() < 1e-3);
/// # Ok::<(), hsdp_core::error::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorSpec {
    speedup: Speedup,
    setup: Seconds,
    payload: Bytes,
    placement: Placement,
    overlap: OverlapFactor,
}

impl AcceleratorSpec {
    /// Starts building a spec with the given speedup; all penalties default
    /// to zero, placement to on-chip, and invocation to synchronous.
    #[must_use]
    pub fn builder(speedup: Speedup) -> AcceleratorSpecBuilder {
        AcceleratorSpecBuilder {
            spec: AcceleratorSpec {
                speedup,
                setup: Seconds::ZERO,
                payload: Bytes::ZERO,
                placement: Placement::OnChip,
                overlap: OverlapFactor::SYNCHRONOUS,
            },
        }
    }

    /// An ideal on-chip synchronous accelerator with no penalties.
    #[must_use]
    pub fn ideal(speedup: Speedup) -> AcceleratorSpec {
        AcceleratorSpec::builder(speedup).build()
    }

    /// The acceleration factor `s_sub_i`.
    #[must_use]
    pub fn speedup(&self) -> Speedup {
        self.speedup
    }

    /// The setup time `t_setup_i`.
    #[must_use]
    pub fn setup(&self) -> Seconds {
        self.setup
    }

    /// The offload payload `B_i` (ignored for on-chip placement).
    #[must_use]
    pub fn payload(&self) -> Bytes {
        self.payload
    }

    /// The placement (on-chip / off-chip).
    #[must_use]
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The overlap factor `g_sub_i`.
    #[must_use]
    pub fn overlap(&self) -> OverlapFactor {
        self.overlap
    }

    /// The invocation penalty `t_pen_i = t_setup_i + 2 * B_i / BW_i`
    /// (Equation 8). On-chip placement contributes no transfer term.
    #[must_use]
    pub fn penalty(&self) -> Seconds {
        match self.placement {
            Placement::OnChip => self.setup,
            Placement::OffChip { link } => {
                self.setup + link.transfer_time(self.payload).scaled(2.0)
            }
        }
    }

    /// The accelerated component time
    /// `t'_sub_i = t_sub_i / s_sub_i + t_pen_i` (Equation 7).
    #[must_use]
    pub fn accelerated_time(&self, original: Seconds) -> Seconds {
        self.speedup.apply(original) + self.penalty()
    }

    /// The accelerated component time *without* the penalty
    /// (`t_sub_i / s_sub_i`), used by the chained model (Equation 12).
    #[must_use]
    pub fn accelerated_time_no_penalty(&self, original: Seconds) -> Seconds {
        self.speedup.apply(original)
    }

    /// Returns a copy with a different overlap factor.
    #[must_use]
    pub fn with_overlap(mut self, overlap: OverlapFactor) -> AcceleratorSpec {
        self.overlap = overlap;
        self
    }

    /// Returns a copy with a different placement.
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> AcceleratorSpec {
        self.placement = placement;
        self
    }

    /// Returns a copy with a different setup time.
    #[must_use]
    pub fn with_setup(mut self, setup: Seconds) -> AcceleratorSpec {
        self.setup = setup;
        self
    }

    /// Returns a copy with a different offload payload.
    #[must_use]
    pub fn with_payload(mut self, payload: Bytes) -> AcceleratorSpec {
        self.payload = payload;
        self
    }

    /// Returns a copy with a different speedup.
    #[must_use]
    pub fn with_speedup(mut self, speedup: Speedup) -> AcceleratorSpec {
        self.speedup = speedup;
        self
    }
}

/// Builder for [`AcceleratorSpec`] ([C-BUILDER]).
#[derive(Debug, Clone)]
pub struct AcceleratorSpecBuilder {
    spec: AcceleratorSpec,
}

impl AcceleratorSpecBuilder {
    /// Sets the setup time `t_setup_i`.
    #[must_use]
    pub fn setup(mut self, setup: Seconds) -> Self {
        self.spec.setup = setup;
        self
    }

    /// Sets the offload payload `B_i`.
    #[must_use]
    pub fn payload(mut self, payload: Bytes) -> Self {
        self.spec.payload = payload;
        self
    }

    /// Sets the placement.
    #[must_use]
    pub fn placement(mut self, placement: Placement) -> Self {
        self.spec.placement = placement;
        self
    }

    /// Sets the overlap factor `g_sub_i`.
    #[must_use]
    pub fn overlap(mut self, overlap: OverlapFactor) -> Self {
        self.spec.overlap = overlap;
        self
    }

    /// Finishes building.
    #[must_use]
    pub fn build(self) -> AcceleratorSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_factor_bounds() {
        assert!(OverlapFactor::new(0.0).is_ok());
        assert!(OverlapFactor::new(1.0).is_ok());
        assert!(OverlapFactor::new(0.5).is_ok());
        assert!(OverlapFactor::new(-0.1).is_err());
        assert!(OverlapFactor::new(1.1).is_err());
        assert!(OverlapFactor::new(f64::NAN).is_err());
    }

    #[test]
    fn speedup_bounds() {
        assert!(Speedup::new(1.0).is_ok());
        assert!(Speedup::new(64.0).is_ok());
        assert!(Speedup::new(0.99).is_err());
        assert!(Speedup::new(f64::INFINITY).is_err());
    }

    #[test]
    fn speedup_apply() {
        let s = Speedup::new(4.0).unwrap();
        assert!((s.apply(Seconds::new(8.0)).as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn on_chip_penalty_is_setup_only() {
        // Equation 8 with B_i = 0: t_pen = t_setup.
        let spec = AcceleratorSpec::builder(Speedup::new(8.0).unwrap())
            .setup(Seconds::from_micros(3.0))
            .payload(Bytes::from_mib(100.0)) // ignored on-chip
            .build();
        assert!((spec.penalty().as_micros() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn off_chip_penalty_includes_round_trip() {
        // 4 GB/s link, 4 GB payload: 2 * B/BW = 2 seconds.
        let spec = AcceleratorSpec::builder(Speedup::new(8.0).unwrap())
            .setup(Seconds::new(0.5))
            .payload(Bytes::new(4e9))
            .placement(Placement::off_chip_pcie_gen5())
            .build();
        assert!((spec.penalty().as_secs() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn accelerated_time_is_eq7() {
        let spec = AcceleratorSpec::builder(Speedup::new(10.0).unwrap())
            .setup(Seconds::new(0.1))
            .build();
        let t = spec.accelerated_time(Seconds::new(1.0));
        assert!((t.as_secs() - 0.2).abs() < 1e-12);
        let t_np = spec.accelerated_time_no_penalty(Seconds::new(1.0));
        assert!((t_np.as_secs() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ideal_spec_has_no_penalty() {
        let spec = AcceleratorSpec::ideal(Speedup::new(64.0).unwrap());
        assert!(spec.penalty().is_zero());
        assert!(spec.placement().is_on_chip());
        assert_eq!(spec.overlap(), OverlapFactor::SYNCHRONOUS);
    }

    #[test]
    fn with_methods_update_fields() {
        let spec = AcceleratorSpec::ideal(Speedup::new(2.0).unwrap())
            .with_overlap(OverlapFactor::ASYNCHRONOUS)
            .with_setup(Seconds::new(1.0))
            .with_payload(Bytes::new(8.0))
            .with_speedup(Speedup::new(3.0).unwrap())
            .with_placement(Placement::off_chip_pcie_gen5());
        assert_eq!(spec.overlap(), OverlapFactor::ASYNCHRONOUS);
        assert_eq!(spec.setup(), Seconds::new(1.0));
        assert_eq!(spec.payload(), Bytes::new(8.0));
        assert!((spec.speedup().factor() - 3.0).abs() < 1e-12);
        assert!(!spec.placement().is_on_chip());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Speedup::new(8.0).unwrap().to_string(), "8.0x");
        assert_eq!(Placement::OnChip.to_string(), "On-Chip");
        assert_eq!(OverlapFactor::SYNCHRONOUS.to_string(), "1.00");
    }
}
