//! The chained-acceleration extension (Equations 9–12, Figure 11).
//!
//! When consecutive operations are known to be linked, their accelerators can
//! be *chained*: each accelerator streams results to the next without
//! returning to the core. The chain is pipelined, so its steady-state time is
//! bounded by its slowest stage; the one-time fill cost is bounded by the
//! largest single penalty:
//!
//! ```text
//! t_chnd   = t_lpen + t_lsubnp                       (Eq. 10)
//! t_lpen   = max(t_pen_i)          over chained i    (Eq. 11)
//! t_lsubnp = max(t_sub_i / s_sub_i) over chained i   (Eq. 12)
//! ```

use crate::accel::AcceleratorSpec;
use crate::category::CpuCategory;
use crate::error::ModelError;
use crate::units::Seconds;

/// One stage of an accelerator chain: a component's original time plus the
/// accelerator that will process it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainStage {
    /// Which CPU component this stage accelerates.
    pub category: CpuCategory,
    /// Original (unaccelerated) component time `t_sub_i`.
    pub original: Seconds,
    /// The accelerator assigned to this stage.
    pub spec: AcceleratorSpec,
}

/// The result of evaluating Equations 10–12 over a chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainEstimate {
    /// `t_lpen`: the largest single accelerator penalty (Eq. 11).
    pub largest_penalty: Seconds,
    /// `t_lsubnp`: the slowest stage's penalty-free time (Eq. 12).
    pub largest_stage: Seconds,
    /// `t_chnd = t_lpen + t_lsubnp` (Eq. 10).
    pub chained_time: Seconds,
}

/// Evaluates the chained-execution time for a set of stages.
///
/// # Errors
///
/// Returns [`ModelError::EmptyChain`] if `stages` is empty — a chain needs at
/// least one stage for Equations 11–12 to be defined.
///
/// # Examples
///
/// ```
/// use hsdp_core::accel::{AcceleratorSpec, Speedup};
/// use hsdp_core::category::{CpuCategory, DatacenterTax};
/// use hsdp_core::chained::{chain_estimate, ChainStage};
/// use hsdp_core::units::Seconds;
///
/// let stages = [
///     ChainStage {
///         category: CpuCategory::from(DatacenterTax::Protobuf),
///         original: Seconds::from_micros(518.3),
///         spec: AcceleratorSpec::ideal(Speedup::new(31.0)?),
///     },
///     ChainStage {
///         category: CpuCategory::from(DatacenterTax::Cryptography),
///         original: Seconds::from_micros(1112.5),
///         spec: AcceleratorSpec::ideal(Speedup::new(51.3)?),
///     },
/// ];
/// let est = chain_estimate(&stages)?;
/// // The SHA3 stage (1112.5us / 51.3x) dominates the pipeline.
/// assert!((est.largest_stage.as_micros() - 1112.5 / 51.3).abs() < 1e-6);
/// # Ok::<(), hsdp_core::error::ModelError>(())
/// ```
pub fn chain_estimate(stages: &[ChainStage]) -> Result<ChainEstimate, ModelError> {
    if stages.is_empty() {
        return Err(ModelError::EmptyChain);
    }
    let largest_penalty = stages
        .iter()
        .map(|s| s.spec.penalty())
        .fold(Seconds::ZERO, Seconds::max);
    let largest_stage = stages
        .iter()
        .map(|s| s.spec.accelerated_time_no_penalty(s.original))
        .fold(Seconds::ZERO, Seconds::max);
    Ok(ChainEstimate {
        largest_penalty,
        largest_stage,
        chained_time: largest_penalty + largest_stage,
    })
}

/// An alternative, more pessimistic chain estimate that *sums* the stage
/// penalties instead of taking their maximum (Eq. 11).
///
/// This is the ablation DESIGN.md calls out: Equation 11 assumes all stage
/// setups can proceed concurrently while the pipeline fills; summing models a
/// serial setup of each stage. Comparing both against a measured pipeline
/// shows which assumption holds.
///
/// # Errors
///
/// Returns [`ModelError::EmptyChain`] if `stages` is empty.
pub fn chain_estimate_summed_penalties(stages: &[ChainStage]) -> Result<ChainEstimate, ModelError> {
    if stages.is_empty() {
        return Err(ModelError::EmptyChain);
    }
    let summed_penalty: Seconds = stages.iter().map(|s| s.spec.penalty()).sum();
    let largest_stage = stages
        .iter()
        .map(|s| s.spec.accelerated_time_no_penalty(s.original))
        .fold(Seconds::ZERO, Seconds::max);
    Ok(ChainEstimate {
        largest_penalty: summed_penalty,
        largest_stage,
        chained_time: summed_penalty + largest_stage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::Speedup;
    use crate::category::DatacenterTax;
    use crate::units::Bytes;

    fn stage(original_us: f64, speedup: f64, setup_us: f64) -> ChainStage {
        ChainStage {
            category: CpuCategory::from(DatacenterTax::Protobuf),
            original: Seconds::from_micros(original_us),
            spec: AcceleratorSpec::builder(Speedup::new(speedup).unwrap())
                .setup(Seconds::from_micros(setup_us))
                .build(),
        }
    }

    use crate::category::CpuCategory;

    #[test]
    fn empty_chain_is_an_error() {
        assert_eq!(chain_estimate(&[]).unwrap_err(), ModelError::EmptyChain);
        assert_eq!(
            chain_estimate_summed_penalties(&[]).unwrap_err(),
            ModelError::EmptyChain
        );
    }

    #[test]
    fn single_stage_chain_is_its_own_bound() {
        let s = stage(100.0, 10.0, 5.0);
        let est = chain_estimate(&[s]).unwrap();
        assert!((est.chained_time.as_micros() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn slowest_stage_dominates() {
        // Stage A: 100us/10x = 10us; stage B: 400us/10x = 40us.
        let est = chain_estimate(&[stage(100.0, 10.0, 0.0), stage(400.0, 10.0, 0.0)]).unwrap();
        assert!((est.largest_stage.as_micros() - 40.0).abs() < 1e-9);
        assert!((est.chained_time.as_micros() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn largest_penalty_bounds_fill_cost() {
        let est = chain_estimate(&[stage(100.0, 10.0, 3.0), stage(100.0, 10.0, 7.0)]).unwrap();
        assert!((est.largest_penalty.as_micros() - 7.0).abs() < 1e-9);
        assert!((est.chained_time.as_micros() - 17.0).abs() < 1e-9);
    }

    #[test]
    fn summed_variant_is_at_least_max_variant() {
        let stages = [stage(100.0, 10.0, 3.0), stage(100.0, 10.0, 7.0)];
        let max_est = chain_estimate(&stages).unwrap();
        let sum_est = chain_estimate_summed_penalties(&stages).unwrap();
        assert!(sum_est.chained_time >= max_est.chained_time);
        assert!((sum_est.largest_penalty.as_micros() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn off_chip_stage_penalty_feeds_eq11() {
        let mut s = stage(100.0, 10.0, 1.0);
        s.spec = s
            .spec
            .with_placement(crate::accel::Placement::off_chip_pcie_gen5())
            .with_payload(Bytes::new(4e9));
        let est = chain_estimate(&[s]).unwrap();
        // 2 * 4e9 / 4e9 = 2s dominates the 1us setup.
        assert!(est.largest_penalty.as_secs() > 1.9);
    }

    #[test]
    fn paper_table8_shape() {
        // Reproduces the arithmetic of Table 8: serialization 518.3us at 31x
        // with 1488.9us setup; SHA3 1112.5us at 51.3x with 4.1us setup.
        let stages = [
            ChainStage {
                category: CpuCategory::from(DatacenterTax::Protobuf),
                original: Seconds::from_micros(518.3),
                spec: AcceleratorSpec::builder(Speedup::new(31.0).unwrap())
                    .setup(Seconds::from_micros(1488.9))
                    .build(),
            },
            ChainStage {
                category: CpuCategory::from(DatacenterTax::Cryptography),
                original: Seconds::from_micros(1112.5),
                spec: AcceleratorSpec::builder(Speedup::new(51.3).unwrap())
                    .setup(Seconds::from_micros(4.1))
                    .build(),
            },
        ];
        let est = chain_estimate(&stages).unwrap();
        // t_lpen = 1488.9us (protobuf setup), t_lsubnp = 1112.5/51.3 = 21.7us.
        assert!((est.largest_penalty.as_micros() - 1488.9).abs() < 1e-6);
        assert!((est.largest_stage.as_micros() - 21.686).abs() < 0.01);
        assert!((est.chained_time.as_micros() - 1510.6).abs() < 0.1);
    }
}
