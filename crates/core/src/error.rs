//! Error types for the analytical model.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or evaluating the analytical model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A physical quantity was negative, NaN or infinite.
    InvalidQuantity {
        /// Name of the offending quantity type (e.g. `"Seconds"`).
        quantity: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An overlap/synchronization factor was outside `[0, 1]`.
    InvalidOverlapFactor {
        /// The rejected value.
        value: f64,
    },
    /// An acceleration factor `s_sub` was below 1 or non-finite.
    InvalidSpeedup {
        /// The rejected value.
        value: f64,
    },
    /// A breakdown's component shares did not sum close to 1.
    UnnormalizedBreakdown {
        /// The actual sum of the shares.
        sum: f64,
    },
    /// An acceleration plan referenced a CPU category twice.
    DuplicateComponent {
        /// Human-readable name of the duplicated category.
        category: String,
    },
    /// A chained plan was requested with no chained components.
    EmptyChain,
    /// A query population was empty where at least one query is required.
    EmptyPopulation,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidQuantity { quantity, value } => {
                write!(
                    f,
                    "invalid {quantity}: {value} (must be finite and in range)"
                )
            }
            ModelError::InvalidOverlapFactor { value } => {
                write!(f, "overlap factor {value} outside [0, 1]")
            }
            ModelError::InvalidSpeedup { value } => {
                write!(f, "speedup factor {value} must be finite and >= 1")
            }
            ModelError::UnnormalizedBreakdown { sum } => {
                write!(f, "breakdown shares sum to {sum}, expected 1.0")
            }
            ModelError::DuplicateComponent { category } => {
                write!(f, "component {category} assigned more than once")
            }
            ModelError::EmptyChain => write!(f, "chained plan has no chained components"),
            ModelError::EmptyPopulation => write!(f, "query population is empty"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs: Vec<ModelError> = vec![
            ModelError::InvalidQuantity {
                quantity: "Seconds",
                value: -1.0,
            },
            ModelError::InvalidOverlapFactor { value: 2.0 },
            ModelError::InvalidSpeedup { value: 0.5 },
            ModelError::UnnormalizedBreakdown { sum: 0.8 },
            ModelError::DuplicateComponent {
                category: "Protobuf".into(),
            },
            ModelError::EmptyChain,
            ModelError::EmptyPopulation,
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ModelError>();
    }
}
