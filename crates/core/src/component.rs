//! CPU-time breakdowns: how a query's (or a platform's) CPU time divides
//! across fine-grained [`CpuCategory`] components.
//!
//! A [`CpuBreakdown`] is the model's view of "where CPU cycles go" — the
//! `t_sub_i` inputs of Figure 7 — and is produced either from the paper's
//! published fractions ([`crate::paper`]) or measured from the simulated
//! platforms by `hsdp-profiling`.

use std::collections::BTreeMap;

use crate::category::{BroadCategory, CpuCategory};
use crate::error::ModelError;
use crate::units::Seconds;

/// Tolerance when checking that shares sum to 1.
const SHARE_SUM_TOLERANCE: f64 = 1e-6;

/// A decomposition of CPU time into disjoint fine-grained components.
///
/// Components are keyed by [`CpuCategory`]; each category appears at most
/// once. The breakdown's total is the sum of its component times (`t_cpu`).
///
/// # Examples
///
/// ```
/// use hsdp_core::category::{CpuCategory, DatacenterTax, CoreComputeOp};
/// use hsdp_core::component::CpuBreakdown;
/// use hsdp_core::units::Seconds;
///
/// let breakdown = CpuBreakdown::from_shares(
///     Seconds::new(1.0),
///     &[
///         (CpuCategory::from(DatacenterTax::Protobuf), 0.25),
///         (CpuCategory::from(CoreComputeOp::Read), 0.75),
///     ],
/// )?;
/// assert!((breakdown.total().as_secs() - 1.0).abs() < 1e-9);
/// # Ok::<(), hsdp_core::error::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CpuBreakdown {
    components: BTreeMap<CpuCategory, Seconds>,
}

impl CpuBreakdown {
    /// Creates an empty breakdown (zero CPU time).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a breakdown from absolute component times.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DuplicateComponent`] if a category appears twice.
    pub fn from_times<I>(times: I) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = (CpuCategory, Seconds)>,
    {
        let mut components = BTreeMap::new();
        for (category, time) in times {
            if components.insert(category, time).is_some() {
                return Err(ModelError::DuplicateComponent {
                    category: category.to_string(),
                });
            }
        }
        Ok(CpuBreakdown { components })
    }

    /// Builds a breakdown from a total CPU time and fractional shares.
    ///
    /// The shares must sum to 1 within a small tolerance; this mirrors how the
    /// paper reports per-category percentages in Figures 3–6.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnnormalizedBreakdown`] if the shares do not sum
    /// to 1, [`ModelError::DuplicateComponent`] on duplicate categories, or
    /// [`ModelError::InvalidQuantity`] if a share is negative.
    pub fn from_shares(total: Seconds, shares: &[(CpuCategory, f64)]) -> Result<Self, ModelError> {
        let sum: f64 = shares.iter().map(|(_, s)| s).sum();
        if (sum - 1.0).abs() > SHARE_SUM_TOLERANCE {
            return Err(ModelError::UnnormalizedBreakdown { sum });
        }
        let mut components = BTreeMap::new();
        for &(category, share) in shares {
            if !(share.is_finite() && share >= 0.0) {
                return Err(ModelError::InvalidQuantity {
                    quantity: "share",
                    value: share,
                });
            }
            if components.insert(category, total.scaled(share)).is_some() {
                return Err(ModelError::DuplicateComponent {
                    category: category.to_string(),
                });
            }
        }
        Ok(CpuBreakdown { components })
    }

    /// Adds (or accumulates into) a component.
    pub fn add(&mut self, category: CpuCategory, time: Seconds) {
        *self.components.entry(category).or_insert(Seconds::ZERO) += time;
    }

    /// The time attributed to `category`, zero if absent.
    #[must_use]
    pub fn time(&self, category: CpuCategory) -> Seconds {
        self.components
            .get(&category)
            .copied()
            .unwrap_or(Seconds::ZERO)
    }

    /// Total CPU time across all components (`t_cpu`).
    #[must_use]
    pub fn total(&self) -> Seconds {
        self.components.values().copied().sum()
    }

    /// The fraction of total CPU time attributed to `category`.
    ///
    /// Returns 0 when the breakdown is empty.
    #[must_use]
    pub fn share(&self, category: CpuCategory) -> f64 {
        self.time(category).ratio(self.total()).unwrap_or(0.0)
    }

    /// Total time attributed to a broad category (Figure 3 rows).
    #[must_use]
    pub fn broad_time(&self, broad: BroadCategory) -> Seconds {
        self.components
            .iter()
            .filter(|(cat, _)| cat.broad() == broad)
            .map(|(_, t)| *t)
            .sum()
    }

    /// The fraction of total CPU time attributed to a broad category.
    #[must_use]
    pub fn broad_share(&self, broad: BroadCategory) -> f64 {
        self.broad_time(broad).ratio(self.total()).unwrap_or(0.0)
    }

    /// Number of components with recorded time.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if no component has recorded time.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Iterates over `(category, time)` pairs in category order.
    pub fn iter(&self) -> impl Iterator<Item = (CpuCategory, Seconds)> + '_ {
        self.components.iter().map(|(c, t)| (*c, *t))
    }

    /// Returns a breakdown scaled so its total equals `new_total`, preserving
    /// the component shares.
    ///
    /// Useful for instantiating the fleet-level percentage breakdowns of the
    /// paper at a particular query's CPU time.
    #[must_use]
    pub fn rescaled(&self, new_total: Seconds) -> CpuBreakdown {
        let total = self.total();
        if total.is_zero() {
            return CpuBreakdown::new();
        }
        let factor = new_total.as_secs() / total.as_secs();
        CpuBreakdown {
            components: self
                .components
                .iter()
                .map(|(c, t)| (*c, t.scaled(factor)))
                .collect(),
        }
    }

    /// Merges another breakdown into this one, summing per-category times.
    pub fn merge(&mut self, other: &CpuBreakdown) {
        for (category, time) in other.iter() {
            self.add(category, time);
        }
    }

    /// The categories present, in stable order.
    #[must_use]
    pub fn categories(&self) -> Vec<CpuCategory> {
        self.components.keys().copied().collect()
    }
}

impl FromIterator<(CpuCategory, Seconds)> for CpuBreakdown {
    /// Collects `(category, time)` pairs, *accumulating* duplicates.
    fn from_iter<I: IntoIterator<Item = (CpuCategory, Seconds)>>(iter: I) -> Self {
        let mut breakdown = CpuBreakdown::new();
        for (category, time) in iter {
            breakdown.add(category, time);
        }
        breakdown
    }
}

impl Extend<(CpuCategory, Seconds)> for CpuBreakdown {
    fn extend<I: IntoIterator<Item = (CpuCategory, Seconds)>>(&mut self, iter: I) {
        for (category, time) in iter {
            self.add(category, time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::{CoreComputeOp, DatacenterTax, SystemTax};

    fn cat_read() -> CpuCategory {
        CpuCategory::from(CoreComputeOp::Read)
    }
    fn cat_proto() -> CpuCategory {
        CpuCategory::from(DatacenterTax::Protobuf)
    }
    fn cat_os() -> CpuCategory {
        CpuCategory::from(SystemTax::OperatingSystems)
    }

    #[test]
    fn from_shares_distributes_total() {
        let b = CpuBreakdown::from_shares(
            Seconds::new(10.0),
            &[(cat_read(), 0.5), (cat_proto(), 0.3), (cat_os(), 0.2)],
        )
        .unwrap();
        assert!((b.time(cat_read()).as_secs() - 5.0).abs() < 1e-9);
        assert!((b.time(cat_proto()).as_secs() - 3.0).abs() < 1e-9);
        assert!((b.total().as_secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn from_shares_rejects_unnormalized() {
        let err = CpuBreakdown::from_shares(Seconds::new(1.0), &[(cat_read(), 0.5)]).unwrap_err();
        assert!(matches!(err, ModelError::UnnormalizedBreakdown { .. }));
    }

    #[test]
    fn from_shares_rejects_negative_share() {
        let err =
            CpuBreakdown::from_shares(Seconds::new(1.0), &[(cat_read(), 1.5), (cat_proto(), -0.5)])
                .unwrap_err();
        assert!(matches!(err, ModelError::InvalidQuantity { .. }));
    }

    #[test]
    fn from_times_rejects_duplicates() {
        let err = CpuBreakdown::from_times([
            (cat_read(), Seconds::new(1.0)),
            (cat_read(), Seconds::new(2.0)),
        ])
        .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateComponent { .. }));
    }

    #[test]
    fn broad_rollups() {
        let b = CpuBreakdown::from_shares(
            Seconds::new(1.0),
            &[(cat_read(), 0.4), (cat_proto(), 0.35), (cat_os(), 0.25)],
        )
        .unwrap();
        assert!((b.broad_share(BroadCategory::CoreCompute) - 0.4).abs() < 1e-9);
        assert!((b.broad_share(BroadCategory::DatacenterTax) - 0.35).abs() < 1e-9);
        assert!((b.broad_share(BroadCategory::SystemTax) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn collect_accumulates_duplicates() {
        let b: CpuBreakdown = [
            (cat_read(), Seconds::new(1.0)),
            (cat_read(), Seconds::new(2.0)),
        ]
        .into_iter()
        .collect();
        assert!((b.time(cat_read()).as_secs() - 3.0).abs() < 1e-9);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn rescale_preserves_shares() {
        let b =
            CpuBreakdown::from_shares(Seconds::new(2.0), &[(cat_read(), 0.7), (cat_proto(), 0.3)])
                .unwrap();
        let r = b.rescaled(Seconds::new(10.0));
        assert!((r.total().as_secs() - 10.0).abs() < 1e-9);
        assert!((r.share(cat_read()) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn rescale_of_empty_is_empty() {
        let b = CpuBreakdown::new();
        assert!(b.rescaled(Seconds::new(5.0)).is_empty());
        assert_eq!(b.share(cat_read()), 0.0);
    }

    #[test]
    fn merge_sums_components() {
        let mut a = CpuBreakdown::from_times([(cat_read(), Seconds::new(1.0))]).unwrap();
        let b = CpuBreakdown::from_times([
            (cat_read(), Seconds::new(2.0)),
            (cat_os(), Seconds::new(1.0)),
        ])
        .unwrap();
        a.merge(&b);
        assert!((a.time(cat_read()).as_secs() - 3.0).abs() < 1e-9);
        assert_eq!(a.len(), 2);
    }
}
