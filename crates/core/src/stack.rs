//! Call-frame paths for stack-aware profiling.
//!
//! GWP attributes every sample to the full call stack of the interrupted
//! thread, not just its leaf frame (Section 5.1). The simulated platforms
//! reproduce that by tagging each charged work item with a [`FramePath`] —
//! the enclosing scope names, outermost first, *excluding* the leaf
//! function (which travels separately, exactly as the meter labels it).
//!
//! Paths are shared, immutable `Arc` slices: pushing a scope snapshots the
//! stack once, and every item charged inside clones the `Arc` (a refcount
//! bump), so deep instrumentation stays O(1) per charge. Frame *interning*
//! (name → dense id) happens at aggregation time in the profiler, where
//! canonical record order makes the id assignment deterministic.

use std::sync::Arc;

/// An immutable call-frame path: scope names outermost-first.
///
/// The leaf function name is *not* part of the path; a full sampled stack
/// is `path + leaf`.
pub type FramePath = Arc<[&'static str]>;

/// The empty path — work charged outside any scope.
#[must_use]
pub fn empty_path() -> FramePath {
    Arc::from([] as [&'static str; 0])
}

/// Builds a path from a slice of frame names.
#[must_use]
pub fn path_of(frames: &[&'static str]) -> FramePath {
    Arc::from(frames)
}

/// Renders `path + leaf` in Brendan Gregg collapsed-stack notation:
/// frames joined by `;`, outermost first, leaf last.
#[must_use]
pub fn collapsed(path: &[&'static str], leaf: &str) -> String {
    let mut out = String::new();
    for frame in path {
        out.push_str(frame);
        out.push(';');
    }
    out.push_str(leaf);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_path_is_empty() {
        assert!(empty_path().is_empty());
        assert_eq!(collapsed(&empty_path(), "leaf"), "leaf");
    }

    #[test]
    fn collapsed_joins_outermost_first() {
        let path = path_of(&["spanner.commit", "consensus"]);
        assert_eq!(
            collapsed(&path, "paxos_propose"),
            "spanner.commit;consensus;paxos_propose"
        );
    }

    #[test]
    fn paths_share_storage() {
        let a = path_of(&["x", "y"]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
