//! Deterministic request identity for per-request tail attribution.
//!
//! The paper's profilers (GWP, Dapper) aggregate over the whole fleet and
//! cannot say whether the datacenter-tax mix looks different for the
//! slowest requests. To answer that we give every traffic query a
//! [`RequestId`] that is a pure function of its position in the workload —
//! `(platform, shard, index)` — so identity is byte-identical at any
//! parallelism and under schedule perturbation, with no global counter to
//! race on.
//!
//! The id packs into one `u64` so it can ride on every `CpuWorkItem` and
//! span without allocation:
//!
//! ```text
//! bits 56..64   platform code + 1   (so any tagged id is nonzero)
//! bits 40..56   shard index         (16 bits)
//! bits  0..40   request index       (40 bits, per shard per platform)
//! ```
//!
//! `RequestId(0)` is reserved as [`RequestId::UNTAGGED`]: background work
//! (preloads, compaction outside a query, engine setup) carries it and is
//! excluded from per-request attribution.

use std::fmt;

use crate::category::Platform;

/// Identity of one traffic request, stable across schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RequestId(pub u64);

/// Bit width of the per-shard request index.
const INDEX_BITS: u32 = 40;
/// Bit width of the shard field.
const SHARD_BITS: u32 = 16;

impl RequestId {
    /// Work not attributable to any single request (preload, engine setup).
    pub const UNTAGGED: RequestId = RequestId(0);

    /// Packs `(platform, shard, index)` into a tagged id.
    ///
    /// `index` is the request's position in the platform's canonical
    /// traffic stream for that shard, which makes the id deterministic by
    /// construction.
    #[must_use]
    pub fn tag(platform: Platform, shard: usize, index: usize) -> RequestId {
        let code = match platform {
            Platform::Spanner => 1u64,
            Platform::BigTable => 2,
            Platform::BigQuery => 3,
        };
        let shard = shard as u64 & ((1 << SHARD_BITS) - 1);
        let index = index as u64 & ((1 << INDEX_BITS) - 1);
        RequestId(code << (SHARD_BITS + INDEX_BITS) | shard << INDEX_BITS | index)
    }

    /// True when this id names an actual traffic request.
    #[must_use]
    pub fn is_tagged(self) -> bool {
        self.0 != 0
    }

    /// The platform field, if tagged.
    #[must_use]
    pub fn platform(self) -> Option<Platform> {
        match self.0 >> (SHARD_BITS + INDEX_BITS) {
            1 => Some(Platform::Spanner),
            2 => Some(Platform::BigTable),
            3 => Some(Platform::BigQuery),
            _ => None,
        }
    }

    /// The shard field (meaningless for untagged ids).
    #[must_use]
    pub fn shard(self) -> u64 {
        self.0 >> INDEX_BITS & ((1 << SHARD_BITS) - 1)
    }

    /// The per-shard request index (meaningless for untagged ids).
    #[must_use]
    pub fn index(self) -> u64 {
        self.0 & ((1 << INDEX_BITS) - 1)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.platform() {
            Some(platform) => {
                let name = match platform {
                    Platform::Spanner => "spanner",
                    Platform::BigTable => "bigtable",
                    Platform::BigQuery => "bigquery",
                };
                write!(f, "{name}/s{:02}/q{:07}", self.shard(), self.index())
            }
            None => f.write_str("untagged"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_ids_are_nonzero_and_roundtrip() {
        for platform in Platform::ALL {
            for (shard, index) in [(0usize, 0usize), (3, 41), (65_535, (1 << 40) - 1)] {
                let id = RequestId::tag(platform, shard, index);
                assert!(id.is_tagged());
                assert_eq!(id.platform(), Some(platform));
                assert_eq!(id.shard(), shard as u64);
                assert_eq!(id.index(), index as u64);
            }
        }
    }

    #[test]
    fn untagged_is_zero_and_default() {
        assert_eq!(RequestId::UNTAGGED.0, 0);
        assert_eq!(RequestId::default(), RequestId::UNTAGGED);
        assert!(!RequestId::UNTAGGED.is_tagged());
        assert_eq!(RequestId::UNTAGGED.platform(), None);
    }

    #[test]
    fn ids_order_by_platform_then_shard_then_index() {
        let a = RequestId::tag(Platform::Spanner, 9, 9);
        let b = RequestId::tag(Platform::BigTable, 0, 0);
        let c = RequestId::tag(Platform::BigTable, 0, 1);
        let d = RequestId::tag(Platform::BigTable, 1, 0);
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn display_is_human_readable() {
        let id = RequestId::tag(Platform::Spanner, 3, 42);
        assert_eq!(id.to_string(), "spanner/s03/q0000042");
        assert_eq!(RequestId::UNTAGGED.to_string(), "untagged");
    }
}
