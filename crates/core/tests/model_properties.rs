//! Property-based tests of the analytical model's invariants.

use hsdp_core::accel::{AcceleratorSpec, OverlapFactor, Placement, Speedup};
use hsdp_core::category::{CoreComputeOp, CpuCategory, DatacenterTax, SystemTax};
use hsdp_core::component::CpuBreakdown;
use hsdp_core::model::{end_to_end_time, QueryPhases};
use hsdp_core::plan::{AccelerationPlan, InvocationModel};
use hsdp_core::units::{Bytes, Seconds};
use proptest::prelude::*;

const CATEGORIES: [CpuCategory; 6] = [
    CpuCategory::Core(CoreComputeOp::Read),
    CpuCategory::Core(CoreComputeOp::Filter),
    CpuCategory::Datacenter(DatacenterTax::Protobuf),
    CpuCategory::Datacenter(DatacenterTax::Compression),
    CpuCategory::System(SystemTax::Stl),
    CpuCategory::System(SystemTax::OperatingSystems),
];

fn arb_breakdown() -> impl Strategy<Value = CpuBreakdown> {
    proptest::collection::vec(0.0f64..10.0, CATEGORIES.len()).prop_map(|times| {
        CATEGORIES
            .iter()
            .zip(times)
            .map(|(&c, t)| (c, Seconds::new(t)))
            .collect()
    })
}

fn arb_phases() -> impl Strategy<Value = QueryPhases> {
    (0.0f64..100.0, 0.0f64..100.0, 0.0f64..=1.0).prop_map(|(cpu, dep, f)| {
        QueryPhases::new(
            Seconds::new(cpu),
            Seconds::new(dep),
            OverlapFactor::new(f).unwrap(),
        )
    })
}

fn uniform_plan(speedup: f64, invocation: InvocationModel) -> AccelerationPlan {
    AccelerationPlan::uniform(CATEGORIES, Speedup::new(speedup).unwrap(), invocation)
        .unwrap()
}

proptest! {
    /// Eq. 1 is bounded by max(cpu, dep) below and cpu + dep above.
    #[test]
    fn e2e_time_bounds(phases in arb_phases()) {
        let t = phases.end_to_end().as_secs();
        let cpu = phases.cpu().as_secs();
        let dep = phases.dep().as_secs();
        prop_assert!(t <= cpu + dep + 1e-9);
        prop_assert!(t >= cpu.max(dep) - 1e-9);
    }

    /// Eq. 1 is monotone in each phase time.
    #[test]
    fn e2e_time_monotone(phases in arb_phases(), extra in 0.0f64..10.0) {
        let base = phases.end_to_end();
        let more_cpu = end_to_end_time(
            phases.cpu() + Seconds::new(extra),
            phases.dep(),
            phases.overlap(),
        );
        prop_assert!(more_cpu >= base);
    }

    /// With ideal accelerators (no penalties), any plan's accelerated CPU
    /// time never exceeds the original CPU time.
    #[test]
    fn ideal_acceleration_never_hurts(
        breakdown in arb_breakdown(),
        speedup in 1.0f64..128.0,
        inv in prop_oneof![
            Just(InvocationModel::Synchronous),
            Just(InvocationModel::Asynchronous),
            Just(InvocationModel::Chained),
        ],
    ) {
        let plan = uniform_plan(speedup, inv);
        let total = breakdown.total();
        let est = plan.accelerated_cpu(total, &breakdown);
        prop_assert!(est.total <= total + Seconds::new(1e-12));
    }

    /// Async <= per-component <= sync accelerated CPU time, for any overlap.
    #[test]
    fn invocation_model_ordering(
        breakdown in arb_breakdown(),
        speedup in 1.0f64..64.0,
        g in 0.0f64..=1.0,
        setup in 0.0f64..0.01,
    ) {
        let spec = AcceleratorSpec::builder(Speedup::new(speedup).unwrap())
            .setup(Seconds::new(setup))
            .overlap(OverlapFactor::new(g).unwrap())
            .build();
        let mut plan = AccelerationPlan::new(InvocationModel::Synchronous);
        for c in CATEGORIES {
            plan.assign(c, spec);
        }
        let total = breakdown.total();
        let t_sync = plan.accelerated_cpu(total, &breakdown).total;
        let t_per = plan
            .with_invocation(InvocationModel::PerComponent)
            .accelerated_cpu(total, &breakdown)
            .total;
        let t_async = plan
            .with_invocation(InvocationModel::Asynchronous)
            .accelerated_cpu(total, &breakdown)
            .total;
        prop_assert!(t_async <= t_per + Seconds::new(1e-12));
        prop_assert!(t_per <= t_sync + Seconds::new(1e-12));
    }

    /// Chained execution is never slower than synchronous execution with the
    /// same specs (it amortizes penalties and pipelines stages).
    #[test]
    fn chained_never_slower_than_sync(
        breakdown in arb_breakdown(),
        speedup in 1.0f64..64.0,
        setup in 0.0f64..0.1,
    ) {
        let spec = AcceleratorSpec::builder(Speedup::new(speedup).unwrap())
            .setup(Seconds::new(setup))
            .build();
        let mut plan = AccelerationPlan::new(InvocationModel::Synchronous);
        for c in CATEGORIES {
            plan.assign(c, spec);
        }
        let total = breakdown.total();
        let t_sync = plan.accelerated_cpu(total, &breakdown).total;
        let t_chained = plan
            .with_invocation(InvocationModel::Chained)
            .accelerated_cpu(total, &breakdown)
            .total;
        prop_assert!(t_chained <= t_sync + Seconds::new(1e-12));
    }

    /// Larger lockstep speedups never increase end-to-end time.
    #[test]
    fn speedup_monotonicity(
        breakdown in arb_breakdown(),
        phases in arb_phases(),
        s1 in 1.0f64..32.0,
        delta in 0.0f64..32.0,
    ) {
        let lo = uniform_plan(s1, InvocationModel::Synchronous);
        let hi = uniform_plan(s1 + delta, InvocationModel::Synchronous);
        let t_lo = lo.evaluate(&phases, &breakdown).accelerated_e2e;
        let t_hi = hi.evaluate(&phases, &breakdown).accelerated_e2e;
        prop_assert!(t_hi <= t_lo + Seconds::new(1e-12));
    }

    /// Moving any off-chip plan on-chip never increases end-to-end time.
    #[test]
    fn on_chip_never_slower(
        breakdown in arb_breakdown(),
        phases in arb_phases(),
        speedup in 1.0f64..64.0,
        payload_kib in 0.0f64..1e6,
    ) {
        let off = uniform_plan(speedup, InvocationModel::Synchronous)
            .with_placement(Placement::off_chip_pcie_gen5())
            .with_payload(Bytes::from_kib(payload_kib));
        let on = off.with_placement(Placement::OnChip);
        let t_off = off.evaluate(&phases, &breakdown).accelerated_e2e;
        let t_on = on.evaluate(&phases, &breakdown).accelerated_e2e;
        prop_assert!(t_on <= t_off + Seconds::new(1e-12));
    }

    /// The accelerated CPU estimate conserves time: components either appear
    /// in the accelerated set or contribute to the unaccelerated remainder.
    #[test]
    fn estimate_conserves_components(
        breakdown in arb_breakdown(),
        speedup in 1.0f64..64.0,
    ) {
        // Accelerate only half the categories.
        let plan = AccelerationPlan::uniform(
            CATEGORIES[..3].to_vec(),
            Speedup::new(speedup).unwrap(),
            InvocationModel::Synchronous,
        ).unwrap();
        let total = breakdown.total();
        let est = plan.accelerated_cpu(total, &breakdown);
        let unacc_expected: Seconds = CATEGORIES[3..]
            .iter()
            .map(|&c| breakdown.time(c))
            .sum();
        prop_assert!((est.unaccelerated.as_secs() - unacc_expected.as_secs()).abs() < 1e-9);
        prop_assert!(est.components.len() <= 3);
    }

    /// Breakdown share arithmetic: shares sum to 1 for non-empty breakdowns.
    #[test]
    fn breakdown_shares_sum_to_one(breakdown in arb_breakdown()) {
        prop_assume!(!breakdown.total().is_zero());
        let sum: f64 = CATEGORIES.iter().map(|&c| breakdown.share(c)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Rescaling preserves shares.
    #[test]
    fn rescale_preserves_shares(breakdown in arb_breakdown(), new_total in 0.001f64..1000.0) {
        prop_assume!(!breakdown.total().is_zero());
        let rescaled = breakdown.rescaled(Seconds::new(new_total));
        for &c in &CATEGORIES {
            prop_assert!((rescaled.share(c) - breakdown.share(c)).abs() < 1e-9);
        }
    }
}
