//! Randomized property tests of the analytical model's invariants.
//!
//! These were originally `proptest` strategies; they are now driven by the
//! in-repo deterministic PRNG so the workspace stays dependency-free. Each
//! property is checked over `CASES` independently sampled inputs per run,
//! with a fixed seed so failures reproduce exactly.

use hsdp_core::accel::{AcceleratorSpec, OverlapFactor, Placement, Speedup};
use hsdp_core::category::{CoreComputeOp, CpuCategory, DatacenterTax, SystemTax};
use hsdp_core::component::CpuBreakdown;
use hsdp_core::model::{end_to_end_time, QueryPhases};
use hsdp_core::plan::{AccelerationPlan, InvocationModel};
use hsdp_core::units::{Bytes, Seconds};
use hsdp_rng::{Rng, StdRng};

const CASES: usize = 512;

const CATEGORIES: [CpuCategory; 6] = [
    CpuCategory::Core(CoreComputeOp::Read),
    CpuCategory::Core(CoreComputeOp::Filter),
    CpuCategory::Datacenter(DatacenterTax::Protobuf),
    CpuCategory::Datacenter(DatacenterTax::Compression),
    CpuCategory::System(SystemTax::Stl),
    CpuCategory::System(SystemTax::OperatingSystems),
];

fn arb_breakdown(rng: &mut StdRng) -> CpuBreakdown {
    CATEGORIES
        .iter()
        .map(|&c| (c, Seconds::new(rng.random_range(0.0..10.0))))
        .collect()
}

fn arb_phases(rng: &mut StdRng) -> QueryPhases {
    QueryPhases::new(
        Seconds::new(rng.random_range(0.0..100.0)),
        Seconds::new(rng.random_range(0.0..100.0)),
        OverlapFactor::new(rng.random::<f64>()).expect("unit interval overlap"),
    )
}

fn uniform_plan(speedup: f64, invocation: InvocationModel) -> AccelerationPlan {
    AccelerationPlan::uniform(
        CATEGORIES,
        Speedup::new(speedup).expect("speedup >= 1"),
        invocation,
    )
    .expect("non-empty uniform plan")
}

/// Eq. 1 is bounded by max(cpu, dep) below and cpu + dep above.
#[test]
fn e2e_time_bounds() {
    let mut rng = StdRng::seed_from_u64(0xE2E1);
    for _ in 0..CASES {
        let phases = arb_phases(&mut rng);
        let t = phases.end_to_end().as_secs();
        let cpu = phases.cpu().as_secs();
        let dep = phases.dep().as_secs();
        assert!(t <= cpu + dep + 1e-9, "t={t} cpu={cpu} dep={dep}");
        assert!(t >= cpu.max(dep) - 1e-9, "t={t} cpu={cpu} dep={dep}");
    }
}

/// Eq. 1 is monotone in each phase time.
#[test]
fn e2e_time_monotone() {
    let mut rng = StdRng::seed_from_u64(0xE2E2);
    for _ in 0..CASES {
        let phases = arb_phases(&mut rng);
        let extra = rng.random_range(0.0..10.0);
        let base = phases.end_to_end();
        let more_cpu = end_to_end_time(
            phases.cpu() + Seconds::new(extra),
            phases.dep(),
            phases.overlap(),
        );
        assert!(more_cpu >= base, "extra={extra} {more_cpu} < {base}");
    }
}

/// With ideal accelerators (no penalties), any plan's accelerated CPU time
/// never exceeds the original CPU time.
#[test]
fn ideal_acceleration_never_hurts() {
    let mut rng = StdRng::seed_from_u64(0x1DEA1);
    const MODELS: [InvocationModel; 3] = [
        InvocationModel::Synchronous,
        InvocationModel::Asynchronous,
        InvocationModel::Chained,
    ];
    for _ in 0..CASES {
        let breakdown = arb_breakdown(&mut rng);
        let speedup = rng.random_range(1.0..128.0);
        let inv = MODELS[rng.random_range(0..MODELS.len())];
        let plan = uniform_plan(speedup, inv);
        let total = breakdown.total();
        let est = plan.accelerated_cpu(total, &breakdown);
        assert!(
            est.total <= total + Seconds::new(1e-12),
            "speedup={speedup} inv={inv:?} est={} total={total}",
            est.total
        );
    }
}

/// Async <= per-component <= sync accelerated CPU time, for any overlap.
#[test]
fn invocation_model_ordering() {
    let mut rng = StdRng::seed_from_u64(0x07DE4);
    for _ in 0..CASES {
        let breakdown = arb_breakdown(&mut rng);
        let speedup = rng.random_range(1.0..64.0);
        let g = rng.random::<f64>();
        let setup = rng.random_range(0.0..0.01);
        let spec = AcceleratorSpec::builder(Speedup::new(speedup).expect("speedup >= 1"))
            .setup(Seconds::new(setup))
            .overlap(OverlapFactor::new(g).expect("unit interval overlap"))
            .build();
        let mut plan = AccelerationPlan::new(InvocationModel::Synchronous);
        for c in CATEGORIES {
            plan.assign(c, spec);
        }
        let total = breakdown.total();
        let t_sync = plan.accelerated_cpu(total, &breakdown).total;
        let t_per = plan
            .with_invocation(InvocationModel::PerComponent)
            .accelerated_cpu(total, &breakdown)
            .total;
        let t_async = plan
            .with_invocation(InvocationModel::Asynchronous)
            .accelerated_cpu(total, &breakdown)
            .total;
        assert!(
            t_async <= t_per + Seconds::new(1e-12),
            "{t_async} > {t_per}"
        );
        assert!(t_per <= t_sync + Seconds::new(1e-12), "{t_per} > {t_sync}");
    }
}

/// Chained execution is never slower than synchronous execution with the
/// same specs (it amortizes penalties and pipelines stages).
#[test]
fn chained_never_slower_than_sync() {
    let mut rng = StdRng::seed_from_u64(0xC4A17);
    for _ in 0..CASES {
        let breakdown = arb_breakdown(&mut rng);
        let speedup = rng.random_range(1.0..64.0);
        let setup = rng.random_range(0.0..0.1);
        let spec = AcceleratorSpec::builder(Speedup::new(speedup).expect("speedup >= 1"))
            .setup(Seconds::new(setup))
            .build();
        let mut plan = AccelerationPlan::new(InvocationModel::Synchronous);
        for c in CATEGORIES {
            plan.assign(c, spec);
        }
        let total = breakdown.total();
        let t_sync = plan.accelerated_cpu(total, &breakdown).total;
        let t_chained = plan
            .with_invocation(InvocationModel::Chained)
            .accelerated_cpu(total, &breakdown)
            .total;
        assert!(
            t_chained <= t_sync + Seconds::new(1e-12),
            "speedup={speedup} setup={setup} {t_chained} > {t_sync}"
        );
    }
}

/// Larger lockstep speedups never increase end-to-end time.
#[test]
fn speedup_monotonicity() {
    let mut rng = StdRng::seed_from_u64(0x5BEED);
    for _ in 0..CASES {
        let breakdown = arb_breakdown(&mut rng);
        let phases = arb_phases(&mut rng);
        let s1 = rng.random_range(1.0..32.0);
        let delta = rng.random_range(0.0..32.0);
        let lo = uniform_plan(s1, InvocationModel::Synchronous);
        let hi = uniform_plan(s1 + delta, InvocationModel::Synchronous);
        let t_lo = lo.evaluate(&phases, &breakdown).accelerated_e2e;
        let t_hi = hi.evaluate(&phases, &breakdown).accelerated_e2e;
        assert!(
            t_hi <= t_lo + Seconds::new(1e-12),
            "s1={s1} delta={delta} {t_hi} > {t_lo}"
        );
    }
}

/// Moving any off-chip plan on-chip never increases end-to-end time.
#[test]
fn on_chip_never_slower() {
    let mut rng = StdRng::seed_from_u64(0x0FFC41B);
    for _ in 0..CASES {
        let breakdown = arb_breakdown(&mut rng);
        let phases = arb_phases(&mut rng);
        let speedup = rng.random_range(1.0..64.0);
        let payload_kib = rng.random_range(0.0..1e6);
        let off = uniform_plan(speedup, InvocationModel::Synchronous)
            .with_placement(Placement::off_chip_pcie_gen5())
            .with_payload(Bytes::from_kib(payload_kib));
        let on = off.with_placement(Placement::OnChip);
        let t_off = off.evaluate(&phases, &breakdown).accelerated_e2e;
        let t_on = on.evaluate(&phases, &breakdown).accelerated_e2e;
        assert!(
            t_on <= t_off + Seconds::new(1e-12),
            "payload_kib={payload_kib} {t_on} > {t_off}"
        );
    }
}

/// The accelerated CPU estimate conserves time: components either appear in
/// the accelerated set or contribute to the unaccelerated remainder.
#[test]
fn estimate_conserves_components() {
    let mut rng = StdRng::seed_from_u64(0xC015E4);
    for _ in 0..CASES {
        let breakdown = arb_breakdown(&mut rng);
        let speedup = rng.random_range(1.0..64.0);
        // Accelerate only half the categories.
        let plan = AccelerationPlan::uniform(
            CATEGORIES[..3].to_vec(),
            Speedup::new(speedup).expect("speedup >= 1"),
            InvocationModel::Synchronous,
        )
        .expect("non-empty plan");
        let total = breakdown.total();
        let est = plan.accelerated_cpu(total, &breakdown);
        let unacc_expected: Seconds = CATEGORIES[3..].iter().map(|&c| breakdown.time(c)).sum();
        assert!(
            (est.unaccelerated.as_secs() - unacc_expected.as_secs()).abs() < 1e-9,
            "unaccelerated {} != expected {unacc_expected}",
            est.unaccelerated
        );
        assert!(est.components.len() <= 3);
    }
}

/// Breakdown share arithmetic: shares sum to 1 for non-empty breakdowns.
#[test]
fn breakdown_shares_sum_to_one() {
    let mut rng = StdRng::seed_from_u64(0x54A4E5);
    for _ in 0..CASES {
        let breakdown = arb_breakdown(&mut rng);
        if breakdown.total().is_zero() {
            continue;
        }
        let sum: f64 = CATEGORIES.iter().map(|&c| breakdown.share(c)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
    }
}

/// Rescaling preserves shares.
#[test]
fn rescale_preserves_shares() {
    let mut rng = StdRng::seed_from_u64(0x4E5CA1E);
    for _ in 0..CASES {
        let breakdown = arb_breakdown(&mut rng);
        if breakdown.total().is_zero() {
            continue;
        }
        let new_total = rng.random_range(0.001..1000.0);
        let rescaled = breakdown.rescaled(Seconds::new(new_total));
        for &c in &CATEGORIES {
            assert!(
                (rescaled.share(c) - breakdown.share(c)).abs() < 1e-9,
                "share of {c:?} drifted under rescale to {new_total}"
            );
        }
    }
}
