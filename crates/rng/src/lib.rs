//! Deterministic pseudo-random number generation for the whole workspace.
//!
//! The simulators and workload generators only need reproducible, seedable,
//! statistically reasonable randomness — not cryptographic strength — so this
//! crate implements xoshiro256++ (Blackman & Vigna) seeded through splitmix64,
//! with a small `rand`-style convenience trait on top. Keeping the generator
//! in-repo keeps the workspace free of external dependencies and makes every
//! simulated experiment bit-reproducible across toolchains.
//!
//! ```
//! use hsdp_rng::{Rng, StdRng};
//! let mut rng = StdRng::seed_from_u64(42);
//! let u: f64 = rng.random();
//! assert!((0.0..1.0).contains(&u));
//! let d = rng.random_range(1..=6);
//! assert!((1..=6).contains(&d));
//! ```

#![forbid(unsafe_code)]

/// The workspace's standard generator: xoshiro256++ with splitmix64 seeding.
///
/// All 64 bits of the seed influence every word of the initial state, so
/// nearby seeds (0, 1, 2, ...) produce uncorrelated streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64: expand the 64-bit seed into 256 bits of state. The
        // all-zero state is unreachable because splitmix64 is a bijection
        // composed with non-zero increments.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

/// Sources of uniform randomness.
///
/// Only [`Rng::next_u64`] is required; everything else is derived, so the
/// trait stays object-safe and usable through `R: Rng + ?Sized` bounds.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (see [`FromRandom`] for the
    /// distribution each type uses; floats are uniform in `[0, 1)`).
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// A uniform sample from `range`.
    ///
    /// Supports `a..b` and `a..=b` over the primitive integer types and
    /// `a..b` over `f64`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped into `[0, 1]`; NaN counts as 0).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait FromRandom: Sized {
    /// Draws one value from `rng`.
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                // Truncation keeps the low bits; xoshiro256++'s low bits are
                // full-period, so this stays uniform.
                // audit: allow(cast, uniform bit truncation of raw PRNG output)
                (rng.next_u64() as $t)
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for u128 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl FromRandom for bool {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) on the dyadic grid.
        // audit: allow(cast, exact u64→f64 conversion of a 53-bit value)
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl FromRandom for f32 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        // audit: allow(cast, exact u64→f32 conversion of a 24-bit value)
        (rng.next_u64() >> 40) as f32 * (1.0 / ((1u32 << 24) as f32))
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `bound` (`bound == 0` means the full 64-bit range),
/// using Lemire's widening-multiply method with rejection, which is unbiased.
fn next_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        // audit: allow(cast, intentional low-64 truncation in Lemire rejection)
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            // audit: allow(cast, high 64 bits of a 128-bit product fit u64)
            return (m >> 64) as u64;
        }
    }
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = u64::from(self.end - self.start);
                // audit: allow(cast, sample is < span which fits the source type)
                self.start + (next_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = u64::from(hi - lo).wrapping_add(1);
                // audit: allow(cast, sample is <= hi-lo which fits the source type)
                lo + (next_below(rng, span) as $t)
            }
        }
    )*};
}
sample_range_uint!(u8, u16, u32, u64);

macro_rules! sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Work in the unsigned domain so `end - start` cannot overflow.
                // audit: allow(cast, two's-complement reinterpretation for span math)
                let span = u64::from((self.end as $u).wrapping_sub(self.start as $u));
                // audit: allow(cast, offset below span re-interpreted back to signed)
                self.start.wrapping_add(next_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // audit: allow(cast, two's-complement reinterpretation for span math)
                let span = u64::from((hi as $u).wrapping_sub(lo as $u)).wrapping_add(1);
                // audit: allow(cast, offset below span re-interpreted back to signed)
                lo.wrapping_add(next_below(rng, span) as $t)
            }
        }
    )*};
}
sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

impl SampleRange<usize> for core::ops::Range<usize> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        // audit: allow(cast, sample is < span which fits usize on 64-bit targets)
        self.start + next_below(rng, span) as usize
    }
}

impl SampleRange<usize> for core::ops::RangeInclusive<usize> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = ((hi - lo) as u64).wrapping_add(1);
        // audit: allow(cast, sample is <= hi-lo which fits usize on 64-bit targets)
        lo + next_below(rng, span) as usize
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start.is_finite() && self.end.is_finite() && self.start < self.end,
            "cannot sample empty or non-finite f64 range"
        );
        let u: f64 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

/// The splitmix64 finalizer: a bijective avalanche mix over `u64`.
const fn splitmix_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent sub-stream seed from `(base, stream, index)`.
///
/// Sharded and multi-phase workloads need many RNG streams that are (a)
/// fully determined by one base seed and (b) uncorrelated with each other.
/// Each coordinate is folded through the splitmix64 finalizer, so nearby
/// `(stream, index)` pairs — `(0, 1)` vs `(1, 0)` — land far apart, and the
/// derivation is stable across platforms and toolchains.
///
/// ```
/// use hsdp_rng::derive_seed;
/// assert_ne!(derive_seed(1, 0, 0), derive_seed(1, 0, 1));
/// assert_ne!(derive_seed(1, 0, 1), derive_seed(1, 1, 0));
/// assert_eq!(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
/// ```
#[must_use]
pub const fn derive_seed(base: u64, stream: u64, index: u64) -> u64 {
    splitmix_mix(splitmix_mix(splitmix_mix(base) ^ stream) ^ index)
}

impl StdRng {
    /// The one sanctioned wall-clock escape hatch: a generator seeded from
    /// `SystemTime` sub-second entropy — *not* secure, but varied enough for
    /// exploratory runs where the caller deliberately did not pick a seed.
    ///
    /// Deterministic code must instead thread a seed through
    /// [`derive_seed`] / a `ShardPlan` shard seed. The `determinism` audit
    /// rule flags every call site of this constructor (and the raw
    /// `SystemTime::now` read below), so any use in model/platform code has
    /// to carry a written waiver.
    #[must_use]
    pub fn from_wall_clock_entropy() -> Self {
        use std::time::{SystemTime, UNIX_EPOCH};
        // audit: allow(determinism, the sanctioned entropy escape hatch: explicitly opt-in, never reachable from fleet code without an audit waiver at the call site)
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let entropy_seed = 0xD1F7_5EED ^ u64::from(nanos);
        StdRng::seed_from_u64(entropy_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..8u64 {
            for index in 0..64u64 {
                assert!(seen.insert(derive_seed(42, stream, index)), "collision");
            }
        }
        // Swapping coordinates must not collide (the mix is not symmetric).
        assert_ne!(derive_seed(42, 3, 5), derive_seed(42, 5, 3));
        // Independent of call order / instance: pure function of the triple.
        assert_eq!(derive_seed(7, 1, 2), derive_seed(7, 1, 2));
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn wall_clock_entropy_rng_is_usable() {
        // Nothing deterministic can be asserted about the seed itself; the
        // constructor just has to hand back a working generator.
        let mut rng = StdRng::from_wall_clock_entropy();
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            assert!((0..5).contains(&rng.random_range(0..5)));
            assert!((1..=6).contains(&rng.random_range(1..=6)));
            assert!((-1000..1000).contains(&rng.random_range(-1000..1000)));
            let u: usize = rng.random_range(8..64);
            assert!((8..64).contains(&u));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all of 0..5 sampled: {seen:?}");
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..=5usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "not all of 0..=5 sampled: {seen:?}"
        );
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(19);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        // audit: allow(cast, test statistic)
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate} too far from 0.25");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(f64::NAN));
    }

    #[test]
    fn trait_object_and_generic_use() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(23);
        assert!(draw(&mut rng) < 100);
        let mut by_ref = &mut rng;
        assert!(draw(&mut by_ref) < 100);
    }

    #[test]
    fn known_answer_vector() {
        // Pinned first outputs for seed 0; guards against silent algorithm
        // changes that would break experiment reproducibility.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }
}
