/root/repo/target/debug/libhsdp_rng.rlib: /root/repo/crates/rng/src/lib.rs
