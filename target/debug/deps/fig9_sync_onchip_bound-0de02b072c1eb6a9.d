/root/repo/target/debug/deps/fig9_sync_onchip_bound-0de02b072c1eb6a9.d: crates/bench/benches/fig9_sync_onchip_bound.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_sync_onchip_bound-0de02b072c1eb6a9.rmeta: crates/bench/benches/fig9_sync_onchip_bound.rs Cargo.toml

crates/bench/benches/fig9_sync_onchip_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
