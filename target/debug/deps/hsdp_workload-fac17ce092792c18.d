/root/repo/target/debug/deps/hsdp_workload-fac17ce092792c18.d: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs

/root/repo/target/debug/deps/libhsdp_workload-fac17ce092792c18.rmeta: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs

crates/workload/src/lib.rs:
crates/workload/src/keys.rs:
crates/workload/src/mix.rs:
crates/workload/src/proto_corpus.rs:
crates/workload/src/rows.rs:
