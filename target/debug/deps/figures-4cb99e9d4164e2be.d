/root/repo/target/debug/deps/figures-4cb99e9d4164e2be.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-4cb99e9d4164e2be.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
