/root/repo/target/debug/deps/ablations-22d480f088721d86.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-22d480f088721d86.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
