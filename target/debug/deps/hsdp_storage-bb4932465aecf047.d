/root/repo/target/debug/deps/hsdp_storage-bb4932465aecf047.d: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/dfs.rs crates/storage/src/predictive.rs crates/storage/src/provision.rs crates/storage/src/tier.rs crates/storage/src/tiered.rs

/root/repo/target/debug/deps/libhsdp_storage-bb4932465aecf047.rmeta: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/dfs.rs crates/storage/src/predictive.rs crates/storage/src/provision.rs crates/storage/src/tier.rs crates/storage/src/tiered.rs

crates/storage/src/lib.rs:
crates/storage/src/cache.rs:
crates/storage/src/dfs.rs:
crates/storage/src/predictive.rs:
crates/storage/src/provision.rs:
crates/storage/src/tier.rs:
crates/storage/src/tiered.rs:
