/root/repo/target/debug/deps/hsdp_profiling-885e7c1056d98f69.d: crates/profiling/src/lib.rs crates/profiling/src/e2e.rs crates/profiling/src/gwp.rs crates/profiling/src/microarch.rs crates/profiling/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_profiling-885e7c1056d98f69.rmeta: crates/profiling/src/lib.rs crates/profiling/src/e2e.rs crates/profiling/src/gwp.rs crates/profiling/src/microarch.rs crates/profiling/src/report.rs Cargo.toml

crates/profiling/src/lib.rs:
crates/profiling/src/e2e.rs:
crates/profiling/src/gwp.rs:
crates/profiling/src/microarch.rs:
crates/profiling/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
