/root/repo/target/debug/deps/tax_primitives-e25ebb16bbcff452.d: crates/bench/benches/tax_primitives.rs Cargo.toml

/root/repo/target/debug/deps/libtax_primitives-e25ebb16bbcff452.rmeta: crates/bench/benches/tax_primitives.rs Cargo.toml

crates/bench/benches/tax_primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
