/root/repo/target/debug/deps/hsdp_core-8fea7e0e1ed30b0f.d: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/category.rs crates/core/src/chained.rs crates/core/src/component.rs crates/core/src/error.rs crates/core/src/model.rs crates/core/src/paper.rs crates/core/src/plan.rs crates/core/src/profile.rs crates/core/src/study.rs crates/core/src/units.rs

/root/repo/target/debug/deps/libhsdp_core-8fea7e0e1ed30b0f.rmeta: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/category.rs crates/core/src/chained.rs crates/core/src/component.rs crates/core/src/error.rs crates/core/src/model.rs crates/core/src/paper.rs crates/core/src/plan.rs crates/core/src/profile.rs crates/core/src/study.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/accel.rs:
crates/core/src/category.rs:
crates/core/src/chained.rs:
crates/core/src/component.rs:
crates/core/src/error.rs:
crates/core/src/model.rs:
crates/core/src/paper.rs:
crates/core/src/plan.rs:
crates/core/src/profile.rs:
crates/core/src/study.rs:
crates/core/src/units.rs:
