/root/repo/target/debug/deps/lsm_reference-e92e60b73d14ee74.d: crates/platforms/tests/lsm_reference.rs

/root/repo/target/debug/deps/lsm_reference-e92e60b73d14ee74: crates/platforms/tests/lsm_reference.rs

crates/platforms/tests/lsm_reference.rs:
