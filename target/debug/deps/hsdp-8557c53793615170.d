/root/repo/target/debug/deps/hsdp-8557c53793615170.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp-8557c53793615170.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
