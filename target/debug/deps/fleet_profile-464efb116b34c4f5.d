/root/repo/target/debug/deps/fleet_profile-464efb116b34c4f5.d: crates/bench/src/bin/fleet_profile.rs

/root/repo/target/debug/deps/fleet_profile-464efb116b34c4f5: crates/bench/src/bin/fleet_profile.rs

crates/bench/src/bin/fleet_profile.rs:
