/root/repo/target/debug/deps/fig14_setup_sweep-71a26c14634e4646.d: crates/bench/benches/fig14_setup_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_setup_sweep-71a26c14634e4646.rmeta: crates/bench/benches/fig14_setup_sweep.rs Cargo.toml

crates/bench/benches/fig14_setup_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
