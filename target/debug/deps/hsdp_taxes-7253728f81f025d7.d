/root/repo/target/debug/deps/hsdp_taxes-7253728f81f025d7.d: crates/taxes/src/lib.rs crates/taxes/src/arena.rs crates/taxes/src/compress.rs crates/taxes/src/crc.rs crates/taxes/src/error.rs crates/taxes/src/frame.rs crates/taxes/src/memops.rs crates/taxes/src/protowire.rs crates/taxes/src/sha3.rs crates/taxes/src/varint.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_taxes-7253728f81f025d7.rmeta: crates/taxes/src/lib.rs crates/taxes/src/arena.rs crates/taxes/src/compress.rs crates/taxes/src/crc.rs crates/taxes/src/error.rs crates/taxes/src/frame.rs crates/taxes/src/memops.rs crates/taxes/src/protowire.rs crates/taxes/src/sha3.rs crates/taxes/src/varint.rs Cargo.toml

crates/taxes/src/lib.rs:
crates/taxes/src/arena.rs:
crates/taxes/src/compress.rs:
crates/taxes/src/crc.rs:
crates/taxes/src/error.rs:
crates/taxes/src/frame.rs:
crates/taxes/src/memops.rs:
crates/taxes/src/protowire.rs:
crates/taxes/src/sha3.rs:
crates/taxes/src/varint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
