/root/repo/target/debug/deps/table1_storage_ratios-0ef71be9eb1878e8.d: crates/bench/benches/table1_storage_ratios.rs

/root/repo/target/debug/deps/libtable1_storage_ratios-0ef71be9eb1878e8.rmeta: crates/bench/benches/table1_storage_ratios.rs

crates/bench/benches/table1_storage_ratios.rs:
