/root/repo/target/debug/deps/codec_properties-b6ebe949a4011a15.d: crates/taxes/tests/codec_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcodec_properties-b6ebe949a4011a15.rmeta: crates/taxes/tests/codec_properties.rs Cargo.toml

crates/taxes/tests/codec_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
