/root/repo/target/debug/deps/figures-64953198a4b84cf9.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-64953198a4b84cf9: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
