/root/repo/target/debug/deps/cache_properties-9271044c77d94585.d: crates/storage/tests/cache_properties.rs

/root/repo/target/debug/deps/libcache_properties-9271044c77d94585.rmeta: crates/storage/tests/cache_properties.rs

crates/storage/tests/cache_properties.rs:
