/root/repo/target/debug/deps/cache_properties-9240195c05dc6ac9.d: crates/storage/tests/cache_properties.rs

/root/repo/target/debug/deps/cache_properties-9240195c05dc6ac9: crates/storage/tests/cache_properties.rs

crates/storage/tests/cache_properties.rs:
