/root/repo/target/debug/deps/hsdp_bench-3489438e5d5e2554.d: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/hsdp_bench-3489438e5d5e2554: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exhibits.rs:
crates/bench/src/harness.rs:
