/root/repo/target/debug/deps/fleet_profile-e34412d3459d2d0e.d: crates/bench/src/bin/fleet_profile.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_profile-e34412d3459d2d0e.rmeta: crates/bench/src/bin/fleet_profile.rs Cargo.toml

crates/bench/src/bin/fleet_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
