/root/repo/target/debug/deps/fig10_grouped_bounds-7a536b0452eb0528.d: crates/bench/benches/fig10_grouped_bounds.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_grouped_bounds-7a536b0452eb0528.rmeta: crates/bench/benches/fig10_grouped_bounds.rs Cargo.toml

crates/bench/benches/fig10_grouped_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
