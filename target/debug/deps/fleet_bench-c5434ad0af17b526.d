/root/repo/target/debug/deps/fleet_bench-c5434ad0af17b526.d: crates/bench/src/bin/fleet_bench.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_bench-c5434ad0af17b526.rmeta: crates/bench/src/bin/fleet_bench.rs Cargo.toml

crates/bench/src/bin/fleet_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
