/root/repo/target/debug/deps/fig4_core_compute-b740cfb188152462.d: crates/bench/benches/fig4_core_compute.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_core_compute-b740cfb188152462.rmeta: crates/bench/benches/fig4_core_compute.rs Cargo.toml

crates/bench/benches/fig4_core_compute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
