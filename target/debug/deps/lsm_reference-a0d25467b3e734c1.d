/root/repo/target/debug/deps/lsm_reference-a0d25467b3e734c1.d: crates/platforms/tests/lsm_reference.rs

/root/repo/target/debug/deps/liblsm_reference-a0d25467b3e734c1.rmeta: crates/platforms/tests/lsm_reference.rs

crates/platforms/tests/lsm_reference.rs:
