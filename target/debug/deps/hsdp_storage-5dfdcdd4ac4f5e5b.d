/root/repo/target/debug/deps/hsdp_storage-5dfdcdd4ac4f5e5b.d: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/dfs.rs crates/storage/src/predictive.rs crates/storage/src/provision.rs crates/storage/src/tier.rs crates/storage/src/tiered.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_storage-5dfdcdd4ac4f5e5b.rmeta: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/dfs.rs crates/storage/src/predictive.rs crates/storage/src/provision.rs crates/storage/src/tier.rs crates/storage/src/tiered.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/cache.rs:
crates/storage/src/dfs.rs:
crates/storage/src/predictive.rs:
crates/storage/src/provision.rs:
crates/storage/src/tier.rs:
crates/storage/src/tiered.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
