/root/repo/target/debug/deps/tax_primitives-6755e6b63c8bae65.d: crates/bench/benches/tax_primitives.rs Cargo.toml

/root/repo/target/debug/deps/libtax_primitives-6755e6b63c8bae65.rmeta: crates/bench/benches/tax_primitives.rs Cargo.toml

crates/bench/benches/tax_primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
