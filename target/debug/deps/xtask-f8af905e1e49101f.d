/root/repo/target/debug/deps/xtask-f8af905e1e49101f.d: crates/xtask/src/lib.rs crates/xtask/src/casts.rs crates/xtask/src/citations.rs crates/xtask/src/deps.rs crates/xtask/src/lexer.rs crates/xtask/src/panics.rs crates/xtask/src/pragma.rs

/root/repo/target/debug/deps/xtask-f8af905e1e49101f: crates/xtask/src/lib.rs crates/xtask/src/casts.rs crates/xtask/src/citations.rs crates/xtask/src/deps.rs crates/xtask/src/lexer.rs crates/xtask/src/panics.rs crates/xtask/src/pragma.rs

crates/xtask/src/lib.rs:
crates/xtask/src/casts.rs:
crates/xtask/src/citations.rs:
crates/xtask/src/deps.rs:
crates/xtask/src/lexer.rs:
crates/xtask/src/panics.rs:
crates/xtask/src/pragma.rs:
