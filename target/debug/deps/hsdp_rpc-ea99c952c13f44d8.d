/root/repo/target/debug/deps/hsdp_rpc-ea99c952c13f44d8.d: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs

/root/repo/target/debug/deps/libhsdp_rpc-ea99c952c13f44d8.rlib: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs

/root/repo/target/debug/deps/libhsdp_rpc-ea99c952c13f44d8.rmeta: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs

crates/rpc/src/lib.rs:
crates/rpc/src/decompose.rs:
crates/rpc/src/latency.rs:
crates/rpc/src/span.rs:
crates/rpc/src/tracer.rs:
