/root/repo/target/debug/deps/hsdp_taxes-31db7489e3725b69.d: crates/taxes/src/lib.rs crates/taxes/src/arena.rs crates/taxes/src/compress.rs crates/taxes/src/crc.rs crates/taxes/src/error.rs crates/taxes/src/frame.rs crates/taxes/src/memops.rs crates/taxes/src/protowire.rs crates/taxes/src/sha3.rs crates/taxes/src/varint.rs

/root/repo/target/debug/deps/hsdp_taxes-31db7489e3725b69: crates/taxes/src/lib.rs crates/taxes/src/arena.rs crates/taxes/src/compress.rs crates/taxes/src/crc.rs crates/taxes/src/error.rs crates/taxes/src/frame.rs crates/taxes/src/memops.rs crates/taxes/src/protowire.rs crates/taxes/src/sha3.rs crates/taxes/src/varint.rs

crates/taxes/src/lib.rs:
crates/taxes/src/arena.rs:
crates/taxes/src/compress.rs:
crates/taxes/src/crc.rs:
crates/taxes/src/error.rs:
crates/taxes/src/frame.rs:
crates/taxes/src/memops.rs:
crates/taxes/src/protowire.rs:
crates/taxes/src/sha3.rs:
crates/taxes/src/varint.rs:
