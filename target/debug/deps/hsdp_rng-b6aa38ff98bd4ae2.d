/root/repo/target/debug/deps/hsdp_rng-b6aa38ff98bd4ae2.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libhsdp_rng-b6aa38ff98bd4ae2.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
