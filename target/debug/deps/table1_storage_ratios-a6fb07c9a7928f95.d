/root/repo/target/debug/deps/table1_storage_ratios-a6fb07c9a7928f95.d: crates/bench/benches/table1_storage_ratios.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_storage_ratios-a6fb07c9a7928f95.rmeta: crates/bench/benches/table1_storage_ratios.rs Cargo.toml

crates/bench/benches/table1_storage_ratios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
