/root/repo/target/debug/deps/fig5_datacenter_tax-3fcc3ae98023e65d.d: crates/bench/benches/fig5_datacenter_tax.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_datacenter_tax-3fcc3ae98023e65d.rmeta: crates/bench/benches/fig5_datacenter_tax.rs Cargo.toml

crates/bench/benches/fig5_datacenter_tax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
