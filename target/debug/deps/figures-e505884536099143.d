/root/repo/target/debug/deps/figures-e505884536099143.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-e505884536099143.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
