/root/repo/target/debug/deps/fixtures-2e77ccf1b58e559b.d: crates/xtask/tests/fixtures.rs

/root/repo/target/debug/deps/fixtures-2e77ccf1b58e559b: crates/xtask/tests/fixtures.rs

crates/xtask/tests/fixtures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
