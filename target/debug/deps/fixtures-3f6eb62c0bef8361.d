/root/repo/target/debug/deps/fixtures-3f6eb62c0bef8361.d: crates/xtask/tests/fixtures.rs Cargo.toml

/root/repo/target/debug/deps/libfixtures-3f6eb62c0bef8361.rmeta: crates/xtask/tests/fixtures.rs Cargo.toml

crates/xtask/tests/fixtures.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
