/root/repo/target/debug/deps/fig14_setup_sweep-6fb27c9d5a14b1c5.d: crates/bench/benches/fig14_setup_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_setup_sweep-6fb27c9d5a14b1c5.rmeta: crates/bench/benches/fig14_setup_sweep.rs Cargo.toml

crates/bench/benches/fig14_setup_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
