/root/repo/target/debug/deps/model_properties-2e9d3cef3c08a2fd.d: crates/core/tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-2e9d3cef3c08a2fd: crates/core/tests/model_properties.rs

crates/core/tests/model_properties.rs:
