/root/repo/target/debug/deps/end_to_end-a61cd317d4a5ff90.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-a61cd317d4a5ff90.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
