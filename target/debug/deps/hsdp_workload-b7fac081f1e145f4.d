/root/repo/target/debug/deps/hsdp_workload-b7fac081f1e145f4.d: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_workload-b7fac081f1e145f4.rmeta: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/keys.rs:
crates/workload/src/mix.rs:
crates/workload/src/proto_corpus.rs:
crates/workload/src/rows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
