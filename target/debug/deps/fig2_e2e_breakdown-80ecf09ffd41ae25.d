/root/repo/target/debug/deps/fig2_e2e_breakdown-80ecf09ffd41ae25.d: crates/bench/benches/fig2_e2e_breakdown.rs

/root/repo/target/debug/deps/libfig2_e2e_breakdown-80ecf09ffd41ae25.rmeta: crates/bench/benches/fig2_e2e_breakdown.rs

crates/bench/benches/fig2_e2e_breakdown.rs:
