/root/repo/target/debug/deps/determinism-30bdd9f24ddf09fe.d: crates/platforms/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-30bdd9f24ddf09fe.rmeta: crates/platforms/tests/determinism.rs Cargo.toml

crates/platforms/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
