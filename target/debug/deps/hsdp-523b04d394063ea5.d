/root/repo/target/debug/deps/hsdp-523b04d394063ea5.d: src/lib.rs

/root/repo/target/debug/deps/libhsdp-523b04d394063ea5.rmeta: src/lib.rs

src/lib.rs:
