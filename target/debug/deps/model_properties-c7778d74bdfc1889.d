/root/repo/target/debug/deps/model_properties-c7778d74bdfc1889.d: crates/core/tests/model_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_properties-c7778d74bdfc1889.rmeta: crates/core/tests/model_properties.rs Cargo.toml

crates/core/tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
