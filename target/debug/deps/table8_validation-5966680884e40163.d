/root/repo/target/debug/deps/table8_validation-5966680884e40163.d: crates/bench/benches/table8_validation.rs Cargo.toml

/root/repo/target/debug/deps/libtable8_validation-5966680884e40163.rmeta: crates/bench/benches/table8_validation.rs Cargo.toml

crates/bench/benches/table8_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
