/root/repo/target/debug/deps/hsdp_core-8f0cf4eb9f306f1e.d: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/audit.rs crates/core/src/category.rs crates/core/src/chained.rs crates/core/src/component.rs crates/core/src/error.rs crates/core/src/model.rs crates/core/src/paper.rs crates/core/src/plan.rs crates/core/src/profile.rs crates/core/src/study.rs crates/core/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_core-8f0cf4eb9f306f1e.rmeta: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/audit.rs crates/core/src/category.rs crates/core/src/chained.rs crates/core/src/component.rs crates/core/src/error.rs crates/core/src/model.rs crates/core/src/paper.rs crates/core/src/plan.rs crates/core/src/profile.rs crates/core/src/study.rs crates/core/src/units.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/accel.rs:
crates/core/src/audit.rs:
crates/core/src/category.rs:
crates/core/src/chained.rs:
crates/core/src/component.rs:
crates/core/src/error.rs:
crates/core/src/model.rs:
crates/core/src/paper.rs:
crates/core/src/plan.rs:
crates/core/src/profile.rs:
crates/core/src/study.rs:
crates/core/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
