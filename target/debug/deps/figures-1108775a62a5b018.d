/root/repo/target/debug/deps/figures-1108775a62a5b018.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-1108775a62a5b018.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
