/root/repo/target/debug/deps/model_validation-eedba2b3f7890ecc.d: tests/model_validation.rs

/root/repo/target/debug/deps/model_validation-eedba2b3f7890ecc: tests/model_validation.rs

tests/model_validation.rs:
