/root/repo/target/debug/deps/hsdp-99712d06d33b5975.d: src/lib.rs

/root/repo/target/debug/deps/hsdp-99712d06d33b5975: src/lib.rs

src/lib.rs:
