/root/repo/target/debug/deps/hsdp_accelsim-c916fdf3df79a9d3.d: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs

/root/repo/target/debug/deps/hsdp_accelsim-c916fdf3df79a9d3: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs

crates/accelsim/src/lib.rs:
crates/accelsim/src/modeled.rs:
crates/accelsim/src/pipeline.rs:
crates/accelsim/src/validate.rs:
