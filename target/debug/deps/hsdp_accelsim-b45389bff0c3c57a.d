/root/repo/target/debug/deps/hsdp_accelsim-b45389bff0c3c57a.d: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs

/root/repo/target/debug/deps/libhsdp_accelsim-b45389bff0c3c57a.rmeta: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs

crates/accelsim/src/lib.rs:
crates/accelsim/src/modeled.rs:
crates/accelsim/src/pipeline.rs:
crates/accelsim/src/validate.rs:
