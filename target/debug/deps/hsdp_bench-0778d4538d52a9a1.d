/root/repo/target/debug/deps/hsdp_bench-0778d4538d52a9a1.d: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libhsdp_bench-0778d4538d52a9a1.rlib: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libhsdp_bench-0778d4538d52a9a1.rmeta: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exhibits.rs:
crates/bench/src/harness.rs:
