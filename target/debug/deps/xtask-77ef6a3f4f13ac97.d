/root/repo/target/debug/deps/xtask-77ef6a3f4f13ac97.d: crates/xtask/src/lib.rs crates/xtask/src/casts.rs crates/xtask/src/citations.rs crates/xtask/src/deps.rs crates/xtask/src/lexer.rs crates/xtask/src/panics.rs crates/xtask/src/pragma.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-77ef6a3f4f13ac97.rmeta: crates/xtask/src/lib.rs crates/xtask/src/casts.rs crates/xtask/src/citations.rs crates/xtask/src/deps.rs crates/xtask/src/lexer.rs crates/xtask/src/panics.rs crates/xtask/src/pragma.rs Cargo.toml

crates/xtask/src/lib.rs:
crates/xtask/src/casts.rs:
crates/xtask/src/citations.rs:
crates/xtask/src/deps.rs:
crates/xtask/src/lexer.rs:
crates/xtask/src/panics.rs:
crates/xtask/src/pragma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
