/root/repo/target/debug/deps/fig13_accel_features-6edab00facf4e77a.d: crates/bench/benches/fig13_accel_features.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_accel_features-6edab00facf4e77a.rmeta: crates/bench/benches/fig13_accel_features.rs Cargo.toml

crates/bench/benches/fig13_accel_features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
