/root/repo/target/debug/deps/fig5_datacenter_tax-b198f8c1f99767d9.d: crates/bench/benches/fig5_datacenter_tax.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_datacenter_tax-b198f8c1f99767d9.rmeta: crates/bench/benches/fig5_datacenter_tax.rs Cargo.toml

crates/bench/benches/fig5_datacenter_tax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
