/root/repo/target/debug/deps/hsdp_rpc-51c2c9f34cf2b5d0.d: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs

/root/repo/target/debug/deps/hsdp_rpc-51c2c9f34cf2b5d0: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs

crates/rpc/src/lib.rs:
crates/rpc/src/decompose.rs:
crates/rpc/src/latency.rs:
crates/rpc/src/span.rs:
crates/rpc/src/tracer.rs:
