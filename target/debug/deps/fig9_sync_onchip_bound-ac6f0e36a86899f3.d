/root/repo/target/debug/deps/fig9_sync_onchip_bound-ac6f0e36a86899f3.d: crates/bench/benches/fig9_sync_onchip_bound.rs

/root/repo/target/debug/deps/libfig9_sync_onchip_bound-ac6f0e36a86899f3.rmeta: crates/bench/benches/fig9_sync_onchip_bound.rs

crates/bench/benches/fig9_sync_onchip_bound.rs:
