/root/repo/target/debug/deps/lsm_reference-851beaae6a1a7fcb.d: crates/platforms/tests/lsm_reference.rs Cargo.toml

/root/repo/target/debug/deps/liblsm_reference-851beaae6a1a7fcb.rmeta: crates/platforms/tests/lsm_reference.rs Cargo.toml

crates/platforms/tests/lsm_reference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
