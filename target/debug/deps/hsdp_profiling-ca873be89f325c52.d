/root/repo/target/debug/deps/hsdp_profiling-ca873be89f325c52.d: crates/profiling/src/lib.rs crates/profiling/src/e2e.rs crates/profiling/src/gwp.rs crates/profiling/src/microarch.rs crates/profiling/src/report.rs

/root/repo/target/debug/deps/hsdp_profiling-ca873be89f325c52: crates/profiling/src/lib.rs crates/profiling/src/e2e.rs crates/profiling/src/gwp.rs crates/profiling/src/microarch.rs crates/profiling/src/report.rs

crates/profiling/src/lib.rs:
crates/profiling/src/e2e.rs:
crates/profiling/src/gwp.rs:
crates/profiling/src/microarch.rs:
crates/profiling/src/report.rs:
