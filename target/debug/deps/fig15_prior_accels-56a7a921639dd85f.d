/root/repo/target/debug/deps/fig15_prior_accels-56a7a921639dd85f.d: crates/bench/benches/fig15_prior_accels.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_prior_accels-56a7a921639dd85f.rmeta: crates/bench/benches/fig15_prior_accels.rs Cargo.toml

crates/bench/benches/fig15_prior_accels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
