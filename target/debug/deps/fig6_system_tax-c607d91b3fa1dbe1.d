/root/repo/target/debug/deps/fig6_system_tax-c607d91b3fa1dbe1.d: crates/bench/benches/fig6_system_tax.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_system_tax-c607d91b3fa1dbe1.rmeta: crates/bench/benches/fig6_system_tax.rs Cargo.toml

crates/bench/benches/fig6_system_tax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
