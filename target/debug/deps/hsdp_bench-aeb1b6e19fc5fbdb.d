/root/repo/target/debug/deps/hsdp_bench-aeb1b6e19fc5fbdb.d: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/hsdp_bench-aeb1b6e19fc5fbdb: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exhibits.rs:
crates/bench/src/harness.rs:
