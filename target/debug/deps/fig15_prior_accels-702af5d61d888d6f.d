/root/repo/target/debug/deps/fig15_prior_accels-702af5d61d888d6f.d: crates/bench/benches/fig15_prior_accels.rs

/root/repo/target/debug/deps/libfig15_prior_accels-702af5d61d888d6f.rmeta: crates/bench/benches/fig15_prior_accels.rs

crates/bench/benches/fig15_prior_accels.rs:
