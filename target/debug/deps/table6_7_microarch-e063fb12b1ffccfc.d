/root/repo/target/debug/deps/table6_7_microarch-e063fb12b1ffccfc.d: crates/bench/benches/table6_7_microarch.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_7_microarch-e063fb12b1ffccfc.rmeta: crates/bench/benches/table6_7_microarch.rs Cargo.toml

crates/bench/benches/table6_7_microarch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
