/root/repo/target/debug/deps/table8_validation-71d3e74adc513655.d: crates/bench/benches/table8_validation.rs Cargo.toml

/root/repo/target/debug/deps/libtable8_validation-71d3e74adc513655.rmeta: crates/bench/benches/table8_validation.rs Cargo.toml

crates/bench/benches/table8_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
