/root/repo/target/debug/deps/hsdp_workload-8e378cf6952eab4c.d: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs

/root/repo/target/debug/deps/libhsdp_workload-8e378cf6952eab4c.rmeta: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs

crates/workload/src/lib.rs:
crates/workload/src/keys.rs:
crates/workload/src/mix.rs:
crates/workload/src/proto_corpus.rs:
crates/workload/src/rows.rs:
