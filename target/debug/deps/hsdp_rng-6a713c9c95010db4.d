/root/repo/target/debug/deps/hsdp_rng-6a713c9c95010db4.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_rng-6a713c9c95010db4.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
