/root/repo/target/debug/deps/hsdp_bench-3ef57fc735bb4aa1.d: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_bench-3ef57fc735bb4aa1.rmeta: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/exhibits.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
