/root/repo/target/debug/deps/fig3_cycle_breakdown-7c930ef4b3effeeb.d: crates/bench/benches/fig3_cycle_breakdown.rs

/root/repo/target/debug/deps/libfig3_cycle_breakdown-7c930ef4b3effeeb.rmeta: crates/bench/benches/fig3_cycle_breakdown.rs

crates/bench/benches/fig3_cycle_breakdown.rs:
