/root/repo/target/debug/deps/hsdp_simcore-a9a17024a6fa39e2.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libhsdp_simcore-a9a17024a6fa39e2.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
