/root/repo/target/debug/deps/hsdp_rng-355a941b0443a0e2.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libhsdp_rng-355a941b0443a0e2.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libhsdp_rng-355a941b0443a0e2.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
