/root/repo/target/debug/deps/table1_storage_ratios-d6e674a27627c721.d: crates/bench/benches/table1_storage_ratios.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_storage_ratios-d6e674a27627c721.rmeta: crates/bench/benches/table1_storage_ratios.rs Cargo.toml

crates/bench/benches/table1_storage_ratios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
