/root/repo/target/debug/deps/fig10_grouped_bounds-19869df80b472a5a.d: crates/bench/benches/fig10_grouped_bounds.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_grouped_bounds-19869df80b472a5a.rmeta: crates/bench/benches/fig10_grouped_bounds.rs Cargo.toml

crates/bench/benches/fig10_grouped_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
