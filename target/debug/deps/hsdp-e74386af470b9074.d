/root/repo/target/debug/deps/hsdp-e74386af470b9074.d: src/lib.rs

/root/repo/target/debug/deps/libhsdp-e74386af470b9074.rmeta: src/lib.rs

src/lib.rs:
