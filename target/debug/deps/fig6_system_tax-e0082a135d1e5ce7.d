/root/repo/target/debug/deps/fig6_system_tax-e0082a135d1e5ce7.d: crates/bench/benches/fig6_system_tax.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_system_tax-e0082a135d1e5ce7.rmeta: crates/bench/benches/fig6_system_tax.rs Cargo.toml

crates/bench/benches/fig6_system_tax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
