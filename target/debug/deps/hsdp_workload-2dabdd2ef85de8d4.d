/root/repo/target/debug/deps/hsdp_workload-2dabdd2ef85de8d4.d: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs

/root/repo/target/debug/deps/hsdp_workload-2dabdd2ef85de8d4: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs

crates/workload/src/lib.rs:
crates/workload/src/keys.rs:
crates/workload/src/mix.rs:
crates/workload/src/proto_corpus.rs:
crates/workload/src/rows.rs:
