/root/repo/target/debug/deps/hsdp_taxes-f1416ac1cec1943c.d: crates/taxes/src/lib.rs crates/taxes/src/arena.rs crates/taxes/src/compress.rs crates/taxes/src/crc.rs crates/taxes/src/error.rs crates/taxes/src/frame.rs crates/taxes/src/memops.rs crates/taxes/src/protowire.rs crates/taxes/src/sha3.rs crates/taxes/src/varint.rs

/root/repo/target/debug/deps/libhsdp_taxes-f1416ac1cec1943c.rlib: crates/taxes/src/lib.rs crates/taxes/src/arena.rs crates/taxes/src/compress.rs crates/taxes/src/crc.rs crates/taxes/src/error.rs crates/taxes/src/frame.rs crates/taxes/src/memops.rs crates/taxes/src/protowire.rs crates/taxes/src/sha3.rs crates/taxes/src/varint.rs

/root/repo/target/debug/deps/libhsdp_taxes-f1416ac1cec1943c.rmeta: crates/taxes/src/lib.rs crates/taxes/src/arena.rs crates/taxes/src/compress.rs crates/taxes/src/crc.rs crates/taxes/src/error.rs crates/taxes/src/frame.rs crates/taxes/src/memops.rs crates/taxes/src/protowire.rs crates/taxes/src/sha3.rs crates/taxes/src/varint.rs

crates/taxes/src/lib.rs:
crates/taxes/src/arena.rs:
crates/taxes/src/compress.rs:
crates/taxes/src/crc.rs:
crates/taxes/src/error.rs:
crates/taxes/src/frame.rs:
crates/taxes/src/memops.rs:
crates/taxes/src/protowire.rs:
crates/taxes/src/sha3.rs:
crates/taxes/src/varint.rs:
