/root/repo/target/debug/deps/model_validation-5dac1bf4a7ab0b66.d: tests/model_validation.rs

/root/repo/target/debug/deps/libmodel_validation-5dac1bf4a7ab0b66.rmeta: tests/model_validation.rs

tests/model_validation.rs:
