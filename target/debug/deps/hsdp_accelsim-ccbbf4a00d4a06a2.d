/root/repo/target/debug/deps/hsdp_accelsim-ccbbf4a00d4a06a2.d: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_accelsim-ccbbf4a00d4a06a2.rmeta: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs Cargo.toml

crates/accelsim/src/lib.rs:
crates/accelsim/src/modeled.rs:
crates/accelsim/src/pipeline.rs:
crates/accelsim/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
