/root/repo/target/debug/deps/fig4_core_compute-c72544bc487a483c.d: crates/bench/benches/fig4_core_compute.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_core_compute-c72544bc487a483c.rmeta: crates/bench/benches/fig4_core_compute.rs Cargo.toml

crates/bench/benches/fig4_core_compute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
