/root/repo/target/debug/deps/fleet_bench-3d2f519005f449e1.d: crates/bench/src/bin/fleet_bench.rs

/root/repo/target/debug/deps/fleet_bench-3d2f519005f449e1: crates/bench/src/bin/fleet_bench.rs

crates/bench/src/bin/fleet_bench.rs:
