/root/repo/target/debug/deps/table8_validation-62acfb4d475c785b.d: crates/bench/benches/table8_validation.rs

/root/repo/target/debug/deps/libtable8_validation-62acfb4d475c785b.rmeta: crates/bench/benches/table8_validation.rs

crates/bench/benches/table8_validation.rs:
