/root/repo/target/debug/deps/codec_properties-d350503024b81410.d: crates/taxes/tests/codec_properties.rs

/root/repo/target/debug/deps/codec_properties-d350503024b81410: crates/taxes/tests/codec_properties.rs

crates/taxes/tests/codec_properties.rs:
