/root/repo/target/debug/deps/xtask-fef9f4cda5c828a0.d: crates/xtask/src/lib.rs crates/xtask/src/casts.rs crates/xtask/src/citations.rs crates/xtask/src/deps.rs crates/xtask/src/lexer.rs crates/xtask/src/panics.rs crates/xtask/src/pragma.rs

/root/repo/target/debug/deps/libxtask-fef9f4cda5c828a0.rlib: crates/xtask/src/lib.rs crates/xtask/src/casts.rs crates/xtask/src/citations.rs crates/xtask/src/deps.rs crates/xtask/src/lexer.rs crates/xtask/src/panics.rs crates/xtask/src/pragma.rs

/root/repo/target/debug/deps/libxtask-fef9f4cda5c828a0.rmeta: crates/xtask/src/lib.rs crates/xtask/src/casts.rs crates/xtask/src/citations.rs crates/xtask/src/deps.rs crates/xtask/src/lexer.rs crates/xtask/src/panics.rs crates/xtask/src/pragma.rs

crates/xtask/src/lib.rs:
crates/xtask/src/casts.rs:
crates/xtask/src/citations.rs:
crates/xtask/src/deps.rs:
crates/xtask/src/lexer.rs:
crates/xtask/src/panics.rs:
crates/xtask/src/pragma.rs:
