/root/repo/target/debug/deps/table6_7_microarch-8debb2603cc22cce.d: crates/bench/benches/table6_7_microarch.rs

/root/repo/target/debug/deps/libtable6_7_microarch-8debb2603cc22cce.rmeta: crates/bench/benches/table6_7_microarch.rs

crates/bench/benches/table6_7_microarch.rs:
