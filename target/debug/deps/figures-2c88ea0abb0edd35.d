/root/repo/target/debug/deps/figures-2c88ea0abb0edd35.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-2c88ea0abb0edd35: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
