/root/repo/target/debug/deps/hsdp_rpc-37ca2fe66d18029e.d: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs

/root/repo/target/debug/deps/libhsdp_rpc-37ca2fe66d18029e.rmeta: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs

crates/rpc/src/lib.rs:
crates/rpc/src/decompose.rs:
crates/rpc/src/latency.rs:
crates/rpc/src/span.rs:
crates/rpc/src/tracer.rs:
