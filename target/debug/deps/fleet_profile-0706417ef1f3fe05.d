/root/repo/target/debug/deps/fleet_profile-0706417ef1f3fe05.d: crates/bench/src/bin/fleet_profile.rs

/root/repo/target/debug/deps/fleet_profile-0706417ef1f3fe05: crates/bench/src/bin/fleet_profile.rs

crates/bench/src/bin/fleet_profile.rs:
