/root/repo/target/debug/deps/figures-f4eb73330e8489ad.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-f4eb73330e8489ad: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
