/root/repo/target/debug/deps/table6_7_microarch-0a9a949ae8d199ca.d: crates/bench/benches/table6_7_microarch.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_7_microarch-0a9a949ae8d199ca.rmeta: crates/bench/benches/table6_7_microarch.rs Cargo.toml

crates/bench/benches/table6_7_microarch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
