/root/repo/target/debug/deps/fleet_bench-6a6474a818fdcb35.d: crates/bench/src/bin/fleet_bench.rs Cargo.toml

/root/repo/target/debug/deps/libfleet_bench-6a6474a818fdcb35.rmeta: crates/bench/src/bin/fleet_bench.rs Cargo.toml

crates/bench/src/bin/fleet_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
