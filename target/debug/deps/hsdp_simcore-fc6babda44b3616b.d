/root/repo/target/debug/deps/hsdp_simcore-fc6babda44b3616b.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libhsdp_simcore-fc6babda44b3616b.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
