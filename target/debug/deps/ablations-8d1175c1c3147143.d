/root/repo/target/debug/deps/ablations-8d1175c1c3147143.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-8d1175c1c3147143.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
