/root/repo/target/debug/deps/hsdp_rpc-455c9167b8a3315b.d: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs

/root/repo/target/debug/deps/libhsdp_rpc-455c9167b8a3315b.rmeta: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs

crates/rpc/src/lib.rs:
crates/rpc/src/decompose.rs:
crates/rpc/src/latency.rs:
crates/rpc/src/span.rs:
crates/rpc/src/tracer.rs:
