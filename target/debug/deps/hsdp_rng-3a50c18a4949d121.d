/root/repo/target/debug/deps/hsdp_rng-3a50c18a4949d121.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_rng-3a50c18a4949d121.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
