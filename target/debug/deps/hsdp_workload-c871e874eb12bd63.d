/root/repo/target/debug/deps/hsdp_workload-c871e874eb12bd63.d: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs

/root/repo/target/debug/deps/libhsdp_workload-c871e874eb12bd63.rlib: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs

/root/repo/target/debug/deps/libhsdp_workload-c871e874eb12bd63.rmeta: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs

crates/workload/src/lib.rs:
crates/workload/src/keys.rs:
crates/workload/src/mix.rs:
crates/workload/src/proto_corpus.rs:
crates/workload/src/rows.rs:
