/root/repo/target/debug/deps/fig3_cycle_breakdown-bc21b06a5357659c.d: crates/bench/benches/fig3_cycle_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_cycle_breakdown-bc21b06a5357659c.rmeta: crates/bench/benches/fig3_cycle_breakdown.rs Cargo.toml

crates/bench/benches/fig3_cycle_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
