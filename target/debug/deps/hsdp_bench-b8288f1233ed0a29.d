/root/repo/target/debug/deps/hsdp_bench-b8288f1233ed0a29.d: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libhsdp_bench-b8288f1233ed0a29.rmeta: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exhibits.rs:
crates/bench/src/harness.rs:
