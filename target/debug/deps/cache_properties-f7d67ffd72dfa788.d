/root/repo/target/debug/deps/cache_properties-f7d67ffd72dfa788.d: crates/storage/tests/cache_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcache_properties-f7d67ffd72dfa788.rmeta: crates/storage/tests/cache_properties.rs Cargo.toml

crates/storage/tests/cache_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
