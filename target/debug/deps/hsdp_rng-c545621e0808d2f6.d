/root/repo/target/debug/deps/hsdp_rng-c545621e0808d2f6.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libhsdp_rng-c545621e0808d2f6.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
