/root/repo/target/debug/deps/hsdp_bench-ff790bde42821953.d: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libhsdp_bench-ff790bde42821953.rmeta: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exhibits.rs:
crates/bench/src/harness.rs:
