/root/repo/target/debug/deps/fig5_datacenter_tax-993e6e3d5d27cfac.d: crates/bench/benches/fig5_datacenter_tax.rs

/root/repo/target/debug/deps/libfig5_datacenter_tax-993e6e3d5d27cfac.rmeta: crates/bench/benches/fig5_datacenter_tax.rs

crates/bench/benches/fig5_datacenter_tax.rs:
