/root/repo/target/debug/deps/fig13_accel_features-02c4d4784ea8412d.d: crates/bench/benches/fig13_accel_features.rs

/root/repo/target/debug/deps/libfig13_accel_features-02c4d4784ea8412d.rmeta: crates/bench/benches/fig13_accel_features.rs

crates/bench/benches/fig13_accel_features.rs:
