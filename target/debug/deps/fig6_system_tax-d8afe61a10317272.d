/root/repo/target/debug/deps/fig6_system_tax-d8afe61a10317272.d: crates/bench/benches/fig6_system_tax.rs

/root/repo/target/debug/deps/libfig6_system_tax-d8afe61a10317272.rmeta: crates/bench/benches/fig6_system_tax.rs

crates/bench/benches/fig6_system_tax.rs:
