/root/repo/target/debug/deps/hsdp_rng-fbe577316c0d1075.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/hsdp_rng-fbe577316c0d1075: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
