/root/repo/target/debug/deps/hsdp_simcore-d4bd7a0e75a6d097.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/pool.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libhsdp_simcore-d4bd7a0e75a6d097.rlib: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/pool.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libhsdp_simcore-d4bd7a0e75a6d097.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/pool.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/pool.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
