/root/repo/target/debug/deps/hsdp_profiling-9ce9e53d674dacae.d: crates/profiling/src/lib.rs crates/profiling/src/e2e.rs crates/profiling/src/gwp.rs crates/profiling/src/microarch.rs crates/profiling/src/report.rs

/root/repo/target/debug/deps/libhsdp_profiling-9ce9e53d674dacae.rlib: crates/profiling/src/lib.rs crates/profiling/src/e2e.rs crates/profiling/src/gwp.rs crates/profiling/src/microarch.rs crates/profiling/src/report.rs

/root/repo/target/debug/deps/libhsdp_profiling-9ce9e53d674dacae.rmeta: crates/profiling/src/lib.rs crates/profiling/src/e2e.rs crates/profiling/src/gwp.rs crates/profiling/src/microarch.rs crates/profiling/src/report.rs

crates/profiling/src/lib.rs:
crates/profiling/src/e2e.rs:
crates/profiling/src/gwp.rs:
crates/profiling/src/microarch.rs:
crates/profiling/src/report.rs:
