/root/repo/target/debug/deps/fig15_prior_accels-fdc763f849257e6d.d: crates/bench/benches/fig15_prior_accels.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_prior_accels-fdc763f849257e6d.rmeta: crates/bench/benches/fig15_prior_accels.rs Cargo.toml

crates/bench/benches/fig15_prior_accels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
