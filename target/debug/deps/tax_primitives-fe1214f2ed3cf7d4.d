/root/repo/target/debug/deps/tax_primitives-fe1214f2ed3cf7d4.d: crates/bench/benches/tax_primitives.rs

/root/repo/target/debug/deps/libtax_primitives-fe1214f2ed3cf7d4.rmeta: crates/bench/benches/tax_primitives.rs

crates/bench/benches/tax_primitives.rs:
