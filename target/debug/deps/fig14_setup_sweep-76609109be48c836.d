/root/repo/target/debug/deps/fig14_setup_sweep-76609109be48c836.d: crates/bench/benches/fig14_setup_sweep.rs

/root/repo/target/debug/deps/libfig14_setup_sweep-76609109be48c836.rmeta: crates/bench/benches/fig14_setup_sweep.rs

crates/bench/benches/fig14_setup_sweep.rs:
