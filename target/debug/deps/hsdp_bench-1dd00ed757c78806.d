/root/repo/target/debug/deps/hsdp_bench-1dd00ed757c78806.d: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libhsdp_bench-1dd00ed757c78806.rlib: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libhsdp_bench-1dd00ed757c78806.rmeta: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exhibits.rs:
crates/bench/src/harness.rs:
