/root/repo/target/debug/deps/fig2_e2e_breakdown-8fd88ef85e087bb7.d: crates/bench/benches/fig2_e2e_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_e2e_breakdown-8fd88ef85e087bb7.rmeta: crates/bench/benches/fig2_e2e_breakdown.rs Cargo.toml

crates/bench/benches/fig2_e2e_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
