/root/repo/target/debug/deps/fig4_core_compute-cd97a27bc4c3e99d.d: crates/bench/benches/fig4_core_compute.rs

/root/repo/target/debug/deps/libfig4_core_compute-cd97a27bc4c3e99d.rmeta: crates/bench/benches/fig4_core_compute.rs

crates/bench/benches/fig4_core_compute.rs:
