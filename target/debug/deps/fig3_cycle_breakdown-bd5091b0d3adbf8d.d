/root/repo/target/debug/deps/fig3_cycle_breakdown-bd5091b0d3adbf8d.d: crates/bench/benches/fig3_cycle_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_cycle_breakdown-bd5091b0d3adbf8d.rmeta: crates/bench/benches/fig3_cycle_breakdown.rs Cargo.toml

crates/bench/benches/fig3_cycle_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
