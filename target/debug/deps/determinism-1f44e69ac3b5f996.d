/root/repo/target/debug/deps/determinism-1f44e69ac3b5f996.d: crates/platforms/tests/determinism.rs

/root/repo/target/debug/deps/determinism-1f44e69ac3b5f996: crates/platforms/tests/determinism.rs

crates/platforms/tests/determinism.rs:
