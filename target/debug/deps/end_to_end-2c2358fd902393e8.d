/root/repo/target/debug/deps/end_to_end-2c2358fd902393e8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2c2358fd902393e8: tests/end_to_end.rs

tests/end_to_end.rs:
