/root/repo/target/debug/deps/hsdp_simcore-f9e5e638fec8fc0f.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/pool.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/hsdp_simcore-f9e5e638fec8fc0f: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/pool.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/pool.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
