/root/repo/target/debug/deps/ablations-3cbde8a1c22c0195.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-3cbde8a1c22c0195.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
