/root/repo/target/debug/deps/model_validation-b7e1a97d6b6aae58.d: tests/model_validation.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_validation-b7e1a97d6b6aae58.rmeta: tests/model_validation.rs Cargo.toml

tests/model_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
