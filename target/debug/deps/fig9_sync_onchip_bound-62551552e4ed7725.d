/root/repo/target/debug/deps/fig9_sync_onchip_bound-62551552e4ed7725.d: crates/bench/benches/fig9_sync_onchip_bound.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_sync_onchip_bound-62551552e4ed7725.rmeta: crates/bench/benches/fig9_sync_onchip_bound.rs Cargo.toml

crates/bench/benches/fig9_sync_onchip_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
