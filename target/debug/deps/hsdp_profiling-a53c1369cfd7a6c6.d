/root/repo/target/debug/deps/hsdp_profiling-a53c1369cfd7a6c6.d: crates/profiling/src/lib.rs crates/profiling/src/e2e.rs crates/profiling/src/gwp.rs crates/profiling/src/microarch.rs crates/profiling/src/report.rs

/root/repo/target/debug/deps/libhsdp_profiling-a53c1369cfd7a6c6.rmeta: crates/profiling/src/lib.rs crates/profiling/src/e2e.rs crates/profiling/src/gwp.rs crates/profiling/src/microarch.rs crates/profiling/src/report.rs

crates/profiling/src/lib.rs:
crates/profiling/src/e2e.rs:
crates/profiling/src/gwp.rs:
crates/profiling/src/microarch.rs:
crates/profiling/src/report.rs:
