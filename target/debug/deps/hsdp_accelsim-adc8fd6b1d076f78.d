/root/repo/target/debug/deps/hsdp_accelsim-adc8fd6b1d076f78.d: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs

/root/repo/target/debug/deps/libhsdp_accelsim-adc8fd6b1d076f78.rmeta: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs

crates/accelsim/src/lib.rs:
crates/accelsim/src/modeled.rs:
crates/accelsim/src/pipeline.rs:
crates/accelsim/src/validate.rs:
