/root/repo/target/debug/deps/figures-0ae410f725506f88.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-0ae410f725506f88.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
