/root/repo/target/debug/deps/xtask-e9cda8f165ea47d2.d: crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-e9cda8f165ea47d2.rmeta: crates/xtask/src/main.rs Cargo.toml

crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
