/root/repo/target/debug/deps/figures-0fd71baa3237e133.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-0fd71baa3237e133: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
