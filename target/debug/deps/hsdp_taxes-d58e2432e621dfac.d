/root/repo/target/debug/deps/hsdp_taxes-d58e2432e621dfac.d: crates/taxes/src/lib.rs crates/taxes/src/arena.rs crates/taxes/src/compress.rs crates/taxes/src/crc.rs crates/taxes/src/error.rs crates/taxes/src/frame.rs crates/taxes/src/memops.rs crates/taxes/src/protowire.rs crates/taxes/src/sha3.rs crates/taxes/src/varint.rs

/root/repo/target/debug/deps/libhsdp_taxes-d58e2432e621dfac.rmeta: crates/taxes/src/lib.rs crates/taxes/src/arena.rs crates/taxes/src/compress.rs crates/taxes/src/crc.rs crates/taxes/src/error.rs crates/taxes/src/frame.rs crates/taxes/src/memops.rs crates/taxes/src/protowire.rs crates/taxes/src/sha3.rs crates/taxes/src/varint.rs

crates/taxes/src/lib.rs:
crates/taxes/src/arena.rs:
crates/taxes/src/compress.rs:
crates/taxes/src/crc.rs:
crates/taxes/src/error.rs:
crates/taxes/src/frame.rs:
crates/taxes/src/memops.rs:
crates/taxes/src/protowire.rs:
crates/taxes/src/sha3.rs:
crates/taxes/src/varint.rs:
