/root/repo/target/debug/deps/fig13_accel_features-90327dc1e36c8070.d: crates/bench/benches/fig13_accel_features.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_accel_features-90327dc1e36c8070.rmeta: crates/bench/benches/fig13_accel_features.rs Cargo.toml

crates/bench/benches/fig13_accel_features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
