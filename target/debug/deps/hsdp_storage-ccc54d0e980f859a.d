/root/repo/target/debug/deps/hsdp_storage-ccc54d0e980f859a.d: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/dfs.rs crates/storage/src/predictive.rs crates/storage/src/provision.rs crates/storage/src/tier.rs crates/storage/src/tiered.rs

/root/repo/target/debug/deps/libhsdp_storage-ccc54d0e980f859a.rmeta: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/dfs.rs crates/storage/src/predictive.rs crates/storage/src/provision.rs crates/storage/src/tier.rs crates/storage/src/tiered.rs

crates/storage/src/lib.rs:
crates/storage/src/cache.rs:
crates/storage/src/dfs.rs:
crates/storage/src/predictive.rs:
crates/storage/src/provision.rs:
crates/storage/src/tier.rs:
crates/storage/src/tiered.rs:
