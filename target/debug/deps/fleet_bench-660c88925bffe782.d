/root/repo/target/debug/deps/fleet_bench-660c88925bffe782.d: crates/bench/src/bin/fleet_bench.rs

/root/repo/target/debug/deps/fleet_bench-660c88925bffe782: crates/bench/src/bin/fleet_bench.rs

crates/bench/src/bin/fleet_bench.rs:
