/root/repo/target/debug/deps/hsdp_platforms-5350a425491cb6fc.d: crates/platforms/src/lib.rs crates/platforms/src/bigquery.rs crates/platforms/src/bigtable.rs crates/platforms/src/bloom.rs crates/platforms/src/columnar.rs crates/platforms/src/costs.rs crates/platforms/src/exec.rs crates/platforms/src/meter.rs crates/platforms/src/runner.rs crates/platforms/src/spanner.rs crates/platforms/src/twopc.rs

/root/repo/target/debug/deps/libhsdp_platforms-5350a425491cb6fc.rmeta: crates/platforms/src/lib.rs crates/platforms/src/bigquery.rs crates/platforms/src/bigtable.rs crates/platforms/src/bloom.rs crates/platforms/src/columnar.rs crates/platforms/src/costs.rs crates/platforms/src/exec.rs crates/platforms/src/meter.rs crates/platforms/src/runner.rs crates/platforms/src/spanner.rs crates/platforms/src/twopc.rs

crates/platforms/src/lib.rs:
crates/platforms/src/bigquery.rs:
crates/platforms/src/bigtable.rs:
crates/platforms/src/bloom.rs:
crates/platforms/src/columnar.rs:
crates/platforms/src/costs.rs:
crates/platforms/src/exec.rs:
crates/platforms/src/meter.rs:
crates/platforms/src/runner.rs:
crates/platforms/src/spanner.rs:
crates/platforms/src/twopc.rs:
