/root/repo/target/debug/deps/hsdp_bench-490e0ebb7dd18f0c.d: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_bench-490e0ebb7dd18f0c.rmeta: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/exhibits.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
