/root/repo/target/debug/deps/hsdp_accelsim-ac38f537faf5b6eb.d: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs

/root/repo/target/debug/deps/libhsdp_accelsim-ac38f537faf5b6eb.rlib: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs

/root/repo/target/debug/deps/libhsdp_accelsim-ac38f537faf5b6eb.rmeta: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs

crates/accelsim/src/lib.rs:
crates/accelsim/src/modeled.rs:
crates/accelsim/src/pipeline.rs:
crates/accelsim/src/validate.rs:
