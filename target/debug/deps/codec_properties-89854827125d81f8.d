/root/repo/target/debug/deps/codec_properties-89854827125d81f8.d: crates/taxes/tests/codec_properties.rs

/root/repo/target/debug/deps/libcodec_properties-89854827125d81f8.rmeta: crates/taxes/tests/codec_properties.rs

crates/taxes/tests/codec_properties.rs:
