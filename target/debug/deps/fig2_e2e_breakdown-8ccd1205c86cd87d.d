/root/repo/target/debug/deps/fig2_e2e_breakdown-8ccd1205c86cd87d.d: crates/bench/benches/fig2_e2e_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_e2e_breakdown-8ccd1205c86cd87d.rmeta: crates/bench/benches/fig2_e2e_breakdown.rs Cargo.toml

crates/bench/benches/fig2_e2e_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
