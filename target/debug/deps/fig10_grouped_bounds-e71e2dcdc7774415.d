/root/repo/target/debug/deps/fig10_grouped_bounds-e71e2dcdc7774415.d: crates/bench/benches/fig10_grouped_bounds.rs

/root/repo/target/debug/deps/libfig10_grouped_bounds-e71e2dcdc7774415.rmeta: crates/bench/benches/fig10_grouped_bounds.rs

crates/bench/benches/fig10_grouped_bounds.rs:
