/root/repo/target/debug/deps/hsdp_bench-c59755b8d5cd1a6e.d: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_bench-c59755b8d5cd1a6e.rmeta: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/exhibits.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
