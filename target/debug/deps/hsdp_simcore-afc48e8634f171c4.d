/root/repo/target/debug/deps/hsdp_simcore-afc48e8634f171c4.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/pool.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_simcore-afc48e8634f171c4.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/pool.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/pool.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
