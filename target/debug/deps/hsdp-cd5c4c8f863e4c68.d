/root/repo/target/debug/deps/hsdp-cd5c4c8f863e4c68.d: src/lib.rs

/root/repo/target/debug/deps/libhsdp-cd5c4c8f863e4c68.rlib: src/lib.rs

/root/repo/target/debug/deps/libhsdp-cd5c4c8f863e4c68.rmeta: src/lib.rs

src/lib.rs:
