/root/repo/target/debug/deps/model_properties-0aa53e66f3ff8360.d: crates/core/tests/model_properties.rs

/root/repo/target/debug/deps/libmodel_properties-0aa53e66f3ff8360.rmeta: crates/core/tests/model_properties.rs

crates/core/tests/model_properties.rs:
