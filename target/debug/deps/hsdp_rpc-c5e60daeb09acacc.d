/root/repo/target/debug/deps/hsdp_rpc-c5e60daeb09acacc.d: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_rpc-c5e60daeb09acacc.rmeta: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs Cargo.toml

crates/rpc/src/lib.rs:
crates/rpc/src/decompose.rs:
crates/rpc/src/latency.rs:
crates/rpc/src/span.rs:
crates/rpc/src/tracer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
