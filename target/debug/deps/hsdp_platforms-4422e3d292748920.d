/root/repo/target/debug/deps/hsdp_platforms-4422e3d292748920.d: crates/platforms/src/lib.rs crates/platforms/src/bigquery.rs crates/platforms/src/bigtable.rs crates/platforms/src/bloom.rs crates/platforms/src/columnar.rs crates/platforms/src/costs.rs crates/platforms/src/exec.rs crates/platforms/src/meter.rs crates/platforms/src/runner.rs crates/platforms/src/spanner.rs crates/platforms/src/twopc.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp_platforms-4422e3d292748920.rmeta: crates/platforms/src/lib.rs crates/platforms/src/bigquery.rs crates/platforms/src/bigtable.rs crates/platforms/src/bloom.rs crates/platforms/src/columnar.rs crates/platforms/src/costs.rs crates/platforms/src/exec.rs crates/platforms/src/meter.rs crates/platforms/src/runner.rs crates/platforms/src/spanner.rs crates/platforms/src/twopc.rs Cargo.toml

crates/platforms/src/lib.rs:
crates/platforms/src/bigquery.rs:
crates/platforms/src/bigtable.rs:
crates/platforms/src/bloom.rs:
crates/platforms/src/columnar.rs:
crates/platforms/src/costs.rs:
crates/platforms/src/exec.rs:
crates/platforms/src/meter.rs:
crates/platforms/src/runner.rs:
crates/platforms/src/spanner.rs:
crates/platforms/src/twopc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
