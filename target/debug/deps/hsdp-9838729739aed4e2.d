/root/repo/target/debug/deps/hsdp-9838729739aed4e2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhsdp-9838729739aed4e2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
