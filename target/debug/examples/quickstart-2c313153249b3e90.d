/root/repo/target/debug/examples/quickstart-2c313153249b3e90.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-2c313153249b3e90.rmeta: examples/quickstart.rs

examples/quickstart.rs:
