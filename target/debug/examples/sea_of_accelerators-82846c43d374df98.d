/root/repo/target/debug/examples/sea_of_accelerators-82846c43d374df98.d: examples/sea_of_accelerators.rs

/root/repo/target/debug/examples/libsea_of_accelerators-82846c43d374df98.rmeta: examples/sea_of_accelerators.rs

examples/sea_of_accelerators.rs:
