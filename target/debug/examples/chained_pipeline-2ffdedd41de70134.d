/root/repo/target/debug/examples/chained_pipeline-2ffdedd41de70134.d: examples/chained_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libchained_pipeline-2ffdedd41de70134.rmeta: examples/chained_pipeline.rs Cargo.toml

examples/chained_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
