/root/repo/target/debug/examples/storage_balance-c89874834a3cde21.d: examples/storage_balance.rs

/root/repo/target/debug/examples/storage_balance-c89874834a3cde21: examples/storage_balance.rs

examples/storage_balance.rs:
