/root/repo/target/debug/examples/distributed_txn-2f9b2523db38b4d6.d: examples/distributed_txn.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_txn-2f9b2523db38b4d6.rmeta: examples/distributed_txn.rs Cargo.toml

examples/distributed_txn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
