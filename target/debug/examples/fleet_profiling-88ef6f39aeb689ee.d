/root/repo/target/debug/examples/fleet_profiling-88ef6f39aeb689ee.d: examples/fleet_profiling.rs

/root/repo/target/debug/examples/libfleet_profiling-88ef6f39aeb689ee.rmeta: examples/fleet_profiling.rs

examples/fleet_profiling.rs:
