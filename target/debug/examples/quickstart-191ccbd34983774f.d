/root/repo/target/debug/examples/quickstart-191ccbd34983774f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-191ccbd34983774f: examples/quickstart.rs

examples/quickstart.rs:
