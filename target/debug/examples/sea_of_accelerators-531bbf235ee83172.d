/root/repo/target/debug/examples/sea_of_accelerators-531bbf235ee83172.d: examples/sea_of_accelerators.rs

/root/repo/target/debug/examples/sea_of_accelerators-531bbf235ee83172: examples/sea_of_accelerators.rs

examples/sea_of_accelerators.rs:
