/root/repo/target/debug/examples/fleet_profiling-cdf08d87af534232.d: examples/fleet_profiling.rs Cargo.toml

/root/repo/target/debug/examples/libfleet_profiling-cdf08d87af534232.rmeta: examples/fleet_profiling.rs Cargo.toml

examples/fleet_profiling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
