/root/repo/target/debug/examples/storage_balance-1fe21821ce3f5baf.d: examples/storage_balance.rs Cargo.toml

/root/repo/target/debug/examples/libstorage_balance-1fe21821ce3f5baf.rmeta: examples/storage_balance.rs Cargo.toml

examples/storage_balance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
