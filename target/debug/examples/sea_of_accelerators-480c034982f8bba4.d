/root/repo/target/debug/examples/sea_of_accelerators-480c034982f8bba4.d: examples/sea_of_accelerators.rs Cargo.toml

/root/repo/target/debug/examples/libsea_of_accelerators-480c034982f8bba4.rmeta: examples/sea_of_accelerators.rs Cargo.toml

examples/sea_of_accelerators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
