/root/repo/target/debug/examples/chained_pipeline-ff5c0a2848e386a6.d: examples/chained_pipeline.rs

/root/repo/target/debug/examples/chained_pipeline-ff5c0a2848e386a6: examples/chained_pipeline.rs

examples/chained_pipeline.rs:
