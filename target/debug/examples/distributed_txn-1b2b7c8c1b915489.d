/root/repo/target/debug/examples/distributed_txn-1b2b7c8c1b915489.d: examples/distributed_txn.rs

/root/repo/target/debug/examples/libdistributed_txn-1b2b7c8c1b915489.rmeta: examples/distributed_txn.rs

examples/distributed_txn.rs:
