/root/repo/target/debug/examples/storage_balance-cbbf972714373511.d: examples/storage_balance.rs

/root/repo/target/debug/examples/libstorage_balance-cbbf972714373511.rmeta: examples/storage_balance.rs

examples/storage_balance.rs:
