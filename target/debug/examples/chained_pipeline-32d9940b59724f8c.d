/root/repo/target/debug/examples/chained_pipeline-32d9940b59724f8c.d: examples/chained_pipeline.rs

/root/repo/target/debug/examples/libchained_pipeline-32d9940b59724f8c.rmeta: examples/chained_pipeline.rs

examples/chained_pipeline.rs:
