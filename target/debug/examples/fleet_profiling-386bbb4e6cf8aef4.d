/root/repo/target/debug/examples/fleet_profiling-386bbb4e6cf8aef4.d: examples/fleet_profiling.rs

/root/repo/target/debug/examples/fleet_profiling-386bbb4e6cf8aef4: examples/fleet_profiling.rs

examples/fleet_profiling.rs:
