/root/repo/target/debug/examples/distributed_txn-9bfd9b512f0f23c3.d: examples/distributed_txn.rs

/root/repo/target/debug/examples/distributed_txn-9bfd9b512f0f23c3: examples/distributed_txn.rs

examples/distributed_txn.rs:
