/root/repo/target/release/deps/hsdp_rpc-ad38a207f884ff86.d: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs

/root/repo/target/release/deps/libhsdp_rpc-ad38a207f884ff86.rlib: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs

/root/repo/target/release/deps/libhsdp_rpc-ad38a207f884ff86.rmeta: crates/rpc/src/lib.rs crates/rpc/src/decompose.rs crates/rpc/src/latency.rs crates/rpc/src/span.rs crates/rpc/src/tracer.rs

crates/rpc/src/lib.rs:
crates/rpc/src/decompose.rs:
crates/rpc/src/latency.rs:
crates/rpc/src/span.rs:
crates/rpc/src/tracer.rs:
