/root/repo/target/release/deps/hsdp_rng-47af70622ce46925.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libhsdp_rng-47af70622ce46925.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libhsdp_rng-47af70622ce46925.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
