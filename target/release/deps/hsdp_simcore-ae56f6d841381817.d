/root/repo/target/release/deps/hsdp_simcore-ae56f6d841381817.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/pool.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libhsdp_simcore-ae56f6d841381817.rlib: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/pool.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libhsdp_simcore-ae56f6d841381817.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/engine.rs crates/simcore/src/pool.rs crates/simcore/src/resource.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/pool.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
