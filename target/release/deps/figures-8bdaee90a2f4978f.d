/root/repo/target/release/deps/figures-8bdaee90a2f4978f.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-8bdaee90a2f4978f: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
