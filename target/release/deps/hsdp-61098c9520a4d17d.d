/root/repo/target/release/deps/hsdp-61098c9520a4d17d.d: src/lib.rs

/root/repo/target/release/deps/libhsdp-61098c9520a4d17d.rlib: src/lib.rs

/root/repo/target/release/deps/libhsdp-61098c9520a4d17d.rmeta: src/lib.rs

src/lib.rs:
