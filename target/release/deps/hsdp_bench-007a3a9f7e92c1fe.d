/root/repo/target/release/deps/hsdp_bench-007a3a9f7e92c1fe.d: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libhsdp_bench-007a3a9f7e92c1fe.rlib: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libhsdp_bench-007a3a9f7e92c1fe.rmeta: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exhibits.rs:
crates/bench/src/harness.rs:
