/root/repo/target/release/deps/hsdp_core-4d7e5d4c9f1ff584.d: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/audit.rs crates/core/src/category.rs crates/core/src/chained.rs crates/core/src/component.rs crates/core/src/error.rs crates/core/src/model.rs crates/core/src/paper.rs crates/core/src/plan.rs crates/core/src/profile.rs crates/core/src/study.rs crates/core/src/units.rs

/root/repo/target/release/deps/libhsdp_core-4d7e5d4c9f1ff584.rlib: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/audit.rs crates/core/src/category.rs crates/core/src/chained.rs crates/core/src/component.rs crates/core/src/error.rs crates/core/src/model.rs crates/core/src/paper.rs crates/core/src/plan.rs crates/core/src/profile.rs crates/core/src/study.rs crates/core/src/units.rs

/root/repo/target/release/deps/libhsdp_core-4d7e5d4c9f1ff584.rmeta: crates/core/src/lib.rs crates/core/src/accel.rs crates/core/src/audit.rs crates/core/src/category.rs crates/core/src/chained.rs crates/core/src/component.rs crates/core/src/error.rs crates/core/src/model.rs crates/core/src/paper.rs crates/core/src/plan.rs crates/core/src/profile.rs crates/core/src/study.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/accel.rs:
crates/core/src/audit.rs:
crates/core/src/category.rs:
crates/core/src/chained.rs:
crates/core/src/component.rs:
crates/core/src/error.rs:
crates/core/src/model.rs:
crates/core/src/paper.rs:
crates/core/src/plan.rs:
crates/core/src/profile.rs:
crates/core/src/study.rs:
crates/core/src/units.rs:
