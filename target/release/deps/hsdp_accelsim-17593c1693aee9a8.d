/root/repo/target/release/deps/hsdp_accelsim-17593c1693aee9a8.d: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs

/root/repo/target/release/deps/libhsdp_accelsim-17593c1693aee9a8.rlib: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs

/root/repo/target/release/deps/libhsdp_accelsim-17593c1693aee9a8.rmeta: crates/accelsim/src/lib.rs crates/accelsim/src/modeled.rs crates/accelsim/src/pipeline.rs crates/accelsim/src/validate.rs

crates/accelsim/src/lib.rs:
crates/accelsim/src/modeled.rs:
crates/accelsim/src/pipeline.rs:
crates/accelsim/src/validate.rs:
