/root/repo/target/release/deps/hsdp_profiling-8dedf841e8afee45.d: crates/profiling/src/lib.rs crates/profiling/src/e2e.rs crates/profiling/src/gwp.rs crates/profiling/src/microarch.rs crates/profiling/src/report.rs

/root/repo/target/release/deps/libhsdp_profiling-8dedf841e8afee45.rlib: crates/profiling/src/lib.rs crates/profiling/src/e2e.rs crates/profiling/src/gwp.rs crates/profiling/src/microarch.rs crates/profiling/src/report.rs

/root/repo/target/release/deps/libhsdp_profiling-8dedf841e8afee45.rmeta: crates/profiling/src/lib.rs crates/profiling/src/e2e.rs crates/profiling/src/gwp.rs crates/profiling/src/microarch.rs crates/profiling/src/report.rs

crates/profiling/src/lib.rs:
crates/profiling/src/e2e.rs:
crates/profiling/src/gwp.rs:
crates/profiling/src/microarch.rs:
crates/profiling/src/report.rs:
