/root/repo/target/release/deps/xtask-261115bf6a634e75.d: crates/xtask/src/lib.rs crates/xtask/src/casts.rs crates/xtask/src/citations.rs crates/xtask/src/deps.rs crates/xtask/src/lexer.rs crates/xtask/src/panics.rs crates/xtask/src/pragma.rs

/root/repo/target/release/deps/libxtask-261115bf6a634e75.rlib: crates/xtask/src/lib.rs crates/xtask/src/casts.rs crates/xtask/src/citations.rs crates/xtask/src/deps.rs crates/xtask/src/lexer.rs crates/xtask/src/panics.rs crates/xtask/src/pragma.rs

/root/repo/target/release/deps/libxtask-261115bf6a634e75.rmeta: crates/xtask/src/lib.rs crates/xtask/src/casts.rs crates/xtask/src/citations.rs crates/xtask/src/deps.rs crates/xtask/src/lexer.rs crates/xtask/src/panics.rs crates/xtask/src/pragma.rs

crates/xtask/src/lib.rs:
crates/xtask/src/casts.rs:
crates/xtask/src/citations.rs:
crates/xtask/src/deps.rs:
crates/xtask/src/lexer.rs:
crates/xtask/src/panics.rs:
crates/xtask/src/pragma.rs:
