/root/repo/target/release/deps/hsdp_taxes-3260f9877864033f.d: crates/taxes/src/lib.rs crates/taxes/src/arena.rs crates/taxes/src/compress.rs crates/taxes/src/crc.rs crates/taxes/src/error.rs crates/taxes/src/frame.rs crates/taxes/src/memops.rs crates/taxes/src/protowire.rs crates/taxes/src/sha3.rs crates/taxes/src/varint.rs

/root/repo/target/release/deps/libhsdp_taxes-3260f9877864033f.rlib: crates/taxes/src/lib.rs crates/taxes/src/arena.rs crates/taxes/src/compress.rs crates/taxes/src/crc.rs crates/taxes/src/error.rs crates/taxes/src/frame.rs crates/taxes/src/memops.rs crates/taxes/src/protowire.rs crates/taxes/src/sha3.rs crates/taxes/src/varint.rs

/root/repo/target/release/deps/libhsdp_taxes-3260f9877864033f.rmeta: crates/taxes/src/lib.rs crates/taxes/src/arena.rs crates/taxes/src/compress.rs crates/taxes/src/crc.rs crates/taxes/src/error.rs crates/taxes/src/frame.rs crates/taxes/src/memops.rs crates/taxes/src/protowire.rs crates/taxes/src/sha3.rs crates/taxes/src/varint.rs

crates/taxes/src/lib.rs:
crates/taxes/src/arena.rs:
crates/taxes/src/compress.rs:
crates/taxes/src/crc.rs:
crates/taxes/src/error.rs:
crates/taxes/src/frame.rs:
crates/taxes/src/memops.rs:
crates/taxes/src/protowire.rs:
crates/taxes/src/sha3.rs:
crates/taxes/src/varint.rs:
