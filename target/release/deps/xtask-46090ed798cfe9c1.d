/root/repo/target/release/deps/xtask-46090ed798cfe9c1.d: crates/xtask/src/main.rs

/root/repo/target/release/deps/xtask-46090ed798cfe9c1: crates/xtask/src/main.rs

crates/xtask/src/main.rs:
