/root/repo/target/release/deps/fig9_sync_onchip_bound-e02ea1d100902a92.d: crates/bench/benches/fig9_sync_onchip_bound.rs

/root/repo/target/release/deps/fig9_sync_onchip_bound-e02ea1d100902a92: crates/bench/benches/fig9_sync_onchip_bound.rs

crates/bench/benches/fig9_sync_onchip_bound.rs:
