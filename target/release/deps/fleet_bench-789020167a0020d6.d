/root/repo/target/release/deps/fleet_bench-789020167a0020d6.d: crates/bench/src/bin/fleet_bench.rs

/root/repo/target/release/deps/fleet_bench-789020167a0020d6: crates/bench/src/bin/fleet_bench.rs

crates/bench/src/bin/fleet_bench.rs:
