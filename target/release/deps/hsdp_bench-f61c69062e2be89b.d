/root/repo/target/release/deps/hsdp_bench-f61c69062e2be89b.d: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libhsdp_bench-f61c69062e2be89b.rlib: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libhsdp_bench-f61c69062e2be89b.rmeta: crates/bench/src/lib.rs crates/bench/src/exhibits.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/exhibits.rs:
crates/bench/src/harness.rs:
