/root/repo/target/release/deps/hsdp_storage-a21abaf41e31d5e7.d: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/dfs.rs crates/storage/src/predictive.rs crates/storage/src/provision.rs crates/storage/src/tier.rs crates/storage/src/tiered.rs

/root/repo/target/release/deps/libhsdp_storage-a21abaf41e31d5e7.rlib: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/dfs.rs crates/storage/src/predictive.rs crates/storage/src/provision.rs crates/storage/src/tier.rs crates/storage/src/tiered.rs

/root/repo/target/release/deps/libhsdp_storage-a21abaf41e31d5e7.rmeta: crates/storage/src/lib.rs crates/storage/src/cache.rs crates/storage/src/dfs.rs crates/storage/src/predictive.rs crates/storage/src/provision.rs crates/storage/src/tier.rs crates/storage/src/tiered.rs

crates/storage/src/lib.rs:
crates/storage/src/cache.rs:
crates/storage/src/dfs.rs:
crates/storage/src/predictive.rs:
crates/storage/src/provision.rs:
crates/storage/src/tier.rs:
crates/storage/src/tiered.rs:
