/root/repo/target/release/deps/hsdp_workload-b53a9785ddf04a5e.d: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs

/root/repo/target/release/deps/libhsdp_workload-b53a9785ddf04a5e.rlib: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs

/root/repo/target/release/deps/libhsdp_workload-b53a9785ddf04a5e.rmeta: crates/workload/src/lib.rs crates/workload/src/keys.rs crates/workload/src/mix.rs crates/workload/src/proto_corpus.rs crates/workload/src/rows.rs

crates/workload/src/lib.rs:
crates/workload/src/keys.rs:
crates/workload/src/mix.rs:
crates/workload/src/proto_corpus.rs:
crates/workload/src/rows.rs:
