/root/repo/target/release/deps/fleet_profile-ba4516b2593fa21f.d: crates/bench/src/bin/fleet_profile.rs

/root/repo/target/release/deps/fleet_profile-ba4516b2593fa21f: crates/bench/src/bin/fleet_profile.rs

crates/bench/src/bin/fleet_profile.rs:
