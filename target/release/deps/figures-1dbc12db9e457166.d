/root/repo/target/release/deps/figures-1dbc12db9e457166.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-1dbc12db9e457166: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
