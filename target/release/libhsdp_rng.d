/root/repo/target/release/libhsdp_rng.rlib: /root/repo/crates/rng/src/lib.rs
