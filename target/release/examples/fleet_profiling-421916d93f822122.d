/root/repo/target/release/examples/fleet_profiling-421916d93f822122.d: examples/fleet_profiling.rs

/root/repo/target/release/examples/fleet_profiling-421916d93f822122: examples/fleet_profiling.rs

examples/fleet_profiling.rs:
