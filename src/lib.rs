//! # hsdp — Profiling Hyperscale Big Data Processing
//!
//! A production-quality Rust reproduction of *Profiling Hyperscale Big Data
//! Processing* (Gonzalez et al., ISCA 2023): three simulated hyperscale
//! data-processing platforms, a Dapper/GWP-style profiling pipeline, and
//! the sea-of-accelerators analytical model with its full limit-study
//! suite.
//!
//! This facade re-exports every workspace crate and provides the [`fleet`]
//! glue that wires the platform simulators into the profiling pipeline.
//!
//! ## Quickstart
//!
//! ```
//! use hsdp::core::accel::Speedup;
//! use hsdp::core::category::Platform;
//! use hsdp::core::paper;
//! use hsdp::core::plan::{AccelerationPlan, InvocationModel};
//!
//! // The paper's headline experiment: 64x lockstep acceleration of the
//! // Section 6.2 component set over the Spanner query population.
//! let population = paper::query_population(Platform::Spanner);
//! let plan = AccelerationPlan::uniform(
//!     paper::accelerated_categories(Platform::Spanner),
//!     Speedup::new(64.0)?,
//!     InvocationModel::Synchronous,
//! )?;
//! let bounded = population.aggregate_speedup(&plan);
//! assert!(bounded > 1.5 && bounded < 3.0); // ~2.0x with deps retained
//! # Ok::<(), hsdp::core::error::ModelError>(())
//! ```

#![forbid(unsafe_code)]

pub use hsdp_accelsim as accelsim;
pub use hsdp_core as core;
pub use hsdp_platforms as platforms;
pub use hsdp_profiling as profiling;
pub use hsdp_rng as rng;
pub use hsdp_rpc as rpc;
pub use hsdp_simcore as simcore;
pub use hsdp_storage as storage;
pub use hsdp_taxes as taxes;
pub use hsdp_workload as workload;

/// Glue between the platform simulators and the profiling pipeline.
pub mod fleet {
    use hsdp_core::category::Platform;
    use hsdp_core::profile::QueryPopulation;
    use hsdp_platforms::exec::QueryExecution;
    use hsdp_platforms::runner::{run_fleet, FleetConfig};
    use hsdp_profiling::e2e::{figure2, Figure2};
    use hsdp_profiling::gwp::{CycleProfile, GwpConfig, GwpProfiler, LeafWork};

    /// Everything the figure benches need about one profiled platform.
    #[derive(Debug)]
    pub struct PlatformRun {
        /// Which platform.
        pub platform: Platform,
        /// Raw per-query execution records.
        pub executions: Vec<QueryExecution>,
        /// The Figure 2 end-to-end aggregation.
        pub figure2: Figure2,
        /// The GWP-style cycle profile (Figures 3–6).
        pub profile: CycleProfile,
        /// The model-ready query population measured from the simulation.
        pub population: QueryPopulation,
    }

    /// Converts a platform's labeled work into profiler input.
    fn leaf_work(exec: &QueryExecution) -> Vec<LeafWork> {
        exec.cpu_work
            .iter()
            .map(|w| LeafWork {
                category: w.category,
                leaf: w.leaf,
                time: w.time,
                stack: w.stack.clone(),
            })
            .collect()
    }

    /// Runs the whole simulated fleet and profiles it end to end.
    ///
    /// # Panics
    ///
    /// Panics if a platform produced no queries (config with zero counts).
    #[must_use]
    pub fn profile_fleet(config: FleetConfig) -> Vec<PlatformRun> {
        run_fleet(config)
            .into_iter()
            .map(|(platform, executions)| {
                let mut profiler = GwpProfiler::new(GwpConfig {
                    sample_period: hsdp_simcore::time::SimDuration::from_micros(2),
                    seed: config.seed ^ platform as u64,
                });
                for exec in &executions {
                    for item in leaf_work(exec) {
                        profiler.observe(&item);
                    }
                }
                let decomposed: Vec<_> = executions
                    .iter()
                    .map(QueryExecution::decomposition)
                    .collect();
                let figure2 = figure2(&decomposed);
                let weight = 1.0 / executions.len().max(1) as f64;
                let records = executions
                    .iter()
                    .map(|e| e.to_query_record(weight))
                    .collect();
                let population = QueryPopulation::new(records)
                    // audit: allow(panic, run_fleet always executes at least one query per platform)
                    .expect("fleet config produced at least one query");
                PlatformRun {
                    platform,
                    executions,
                    figure2,
                    profile: profiler.into_profile(),
                    population,
                }
            })
            .collect()
    }
}
