//! Integration tests for the validation chain: analytical model ↔
//! event-level simulation ↔ real software pipeline.

use hsdp::accelsim::modeled::{
    analytic_chained, simulate_asynchronous, simulate_chained, simulate_synchronous, StageSpec,
};
use hsdp::accelsim::validate::{paper_replay, software_validation};
use hsdp::simcore::time::SimDuration;

#[test]
fn paper_table8_replay_is_exact() {
    let replay = paper_replay();
    assert!((replay.recomputed_modeled_us - 6459.3).abs() < 0.5);
    assert!((replay.model_vs_measured - 0.061).abs() < 0.005);
}

#[test]
fn event_simulation_agrees_with_closed_form() {
    // Random-ish stage sets: the pipeline recurrence converges to Eqs 10-12.
    let stage_sets: Vec<Vec<StageSpec>> = vec![
        vec![
            StageSpec {
                per_item: SimDuration::from_micros(10),
                setup: SimDuration::from_micros(100),
            },
            StageSpec {
                per_item: SimDuration::from_micros(30),
                setup: SimDuration::from_micros(2),
            },
        ],
        vec![
            StageSpec {
                per_item: SimDuration::from_micros(5),
                setup: SimDuration::from_micros(1),
            },
            StageSpec {
                per_item: SimDuration::from_micros(5),
                setup: SimDuration::from_micros(1),
            },
            StageSpec {
                per_item: SimDuration::from_micros(5),
                setup: SimDuration::from_micros(1),
            },
        ],
        vec![StageSpec {
            per_item: SimDuration::from_micros(42),
            setup: SimDuration::ZERO,
        }],
    ];
    for stages in stage_sets {
        let items = 5_000;
        let simulated = simulate_chained(&stages, items).as_nanos() as f64;
        let analytic = analytic_chained(&stages, items).as_nanos() as f64;
        let gap = (simulated - analytic) / analytic;
        assert!((0.0..0.02).contains(&gap), "gap {gap}");
        // Ordering invariant: async <= chained <= sync.
        let sync = simulate_synchronous(&stages, items);
        let async_ = simulate_asynchronous(&stages, items);
        let chained = simulate_chained(&stages, items);
        assert!(async_ <= chained || stages.len() == 1);
        assert!(chained <= sync);
    }
}

#[test]
fn software_pipeline_validates_the_model() {
    let v = software_validation(300, 42);
    // The model estimate lands in the same regime as the measurement.
    // Wall-clock noise on shared machines calls for a generous band; the
    // bench reports the exact numbers. On a single hardware thread the two
    // pipeline stages time-slice one core and the cross-thread handoff
    // overhead dominates the measurement, so only a much looser band is
    // meaningful there.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let band = if cores >= 2 { 0.75 } else { 0.95 };
    assert!(
        v.model_vs_measured.abs() < band,
        "model {}us vs measured {}us (band {band})",
        v.chained_modeled_us,
        v.chained_measured_us
    );
    // Stage totals are consistent with the sequential run.
    assert!(v.sequential_us >= (v.serialize_us + v.sha3_us) * 0.5);
}
