//! Cross-crate integration tests: the full pipeline from simulated
//! platforms through profiling into the analytical model, checked against
//! the paper's qualitative findings.

use hsdp::core::accel::Speedup;
use hsdp::core::category::{BroadCategory, Platform};
use hsdp::core::paper;
use hsdp::core::plan::{AccelerationPlan, InvocationModel};
use hsdp::core::profile::QueryGroup;
use hsdp::fleet::profile_fleet;
use hsdp::platforms::runner::FleetConfig;

fn small_fleet() -> Vec<hsdp::fleet::PlatformRun> {
    profile_fleet(FleetConfig {
        db_queries: 150,
        analytics_queries: 24,
        fact_rows: 3_000,
        seed: 77,
        ..FleetConfig::default()
    })
}

#[test]
fn fleet_covers_all_three_platforms() {
    let runs = small_fleet();
    let platforms: Vec<Platform> = runs.iter().map(|r| r.platform).collect();
    assert_eq!(
        platforms,
        vec![Platform::Spanner, Platform::BigTable, Platform::BigQuery]
    );
    for run in &runs {
        assert!(!run.executions.is_empty());
        assert!(run.profile.total_samples() > 100, "{}", run.platform);
    }
}

#[test]
fn headline_finding_no_single_category_dominates() {
    // Section 5.2: "neither core compute, nor datacenter taxes, nor system
    // taxes dominate overall compute cycles".
    for run in small_fleet() {
        for broad in BroadCategory::ALL {
            let share = run.profile.broad_share(broad);
            assert!(
                share > 0.05 && share < 0.70,
                "{} {broad}: {share}",
                run.platform
            );
        }
        // Taxes together account for the majority (the paper quotes >72%
        // fleet-wide; allow headroom for the simulation).
        let taxes = run.profile.broad_share(BroadCategory::DatacenterTax)
            + run.profile.broad_share(BroadCategory::SystemTax);
        assert!(taxes > 0.50, "{} taxes {taxes}", run.platform);
    }
}

#[test]
fn databases_are_cpu_heavy_bigquery_is_not() {
    // Figure 2's central contrast.
    let runs = small_fleet();
    let cpu_heavy = |run: &hsdp::fleet::PlatformRun| {
        run.figure2
            .groups
            .iter()
            .find(|r| r.group == QueryGroup::CpuHeavy)
            .map_or(0.0, |r| r.query_fraction)
    };
    let spanner = cpu_heavy(&runs[0]);
    let bigtable = cpu_heavy(&runs[1]);
    let bigquery = cpu_heavy(&runs[2]);
    assert!(spanner > 0.5, "Spanner CPU-heavy {spanner}");
    assert!(bigtable > 0.5, "BigTable CPU-heavy {bigtable}");
    assert!(bigquery < 0.3, "BigQuery CPU-heavy {bigquery}");
    // BigQuery leans on IO and remote work instead.
    let bq_io_remote: f64 = runs[2]
        .figure2
        .groups
        .iter()
        .filter(|r| r.group == QueryGroup::IoHeavy || r.group == QueryGroup::RemoteWorkHeavy)
        .map(|r| r.query_fraction)
        .sum();
    assert!(bq_io_remote > 0.6, "BigQuery IO+remote {bq_io_remote}");
}

#[test]
fn measured_population_reproduces_amdahl_bound() {
    // Applying the Section 6.2 plan to the *measured* populations (not the
    // calibrated paper ones) still shows the paper's core result: hardware-
    // only acceleration is bounded, co-design unlocks far more.
    for run in small_fleet() {
        let plan = AccelerationPlan::uniform(
            paper::accelerated_categories(run.platform),
            Speedup::new(64.0).expect("valid"),
            InvocationModel::Synchronous,
        )
        .expect("fresh plan");
        let bounded = run.population.aggregate_speedup(&plan);
        let codesign = run.population.aggregate_codesign_speedup(&plan);
        assert!(
            bounded < codesign,
            "{}: bounded {bounded} vs codesign {codesign}",
            run.platform
        );
        assert!(bounded >= 1.0);
        assert!(
            codesign > 1.5,
            "{}: co-design should clearly win, got {codesign}",
            run.platform
        );
    }
}

#[test]
fn chained_tracks_async_on_measured_populations() {
    // Section 6.3.2: chaining comes within ~1% of full asynchrony.
    for run in small_fleet() {
        let sync = AccelerationPlan::uniform(
            paper::accelerated_categories(run.platform),
            Speedup::new(8.0).expect("valid"),
            InvocationModel::Synchronous,
        )
        .expect("fresh plan");
        let async_s = run
            .population
            .aggregate_speedup(&sync.with_invocation(InvocationModel::Asynchronous));
        let chained_s = run
            .population
            .aggregate_speedup(&sync.with_invocation(InvocationModel::Chained));
        let sync_s = run.population.aggregate_speedup(&sync);
        assert!(async_s >= sync_s - 1e-9, "{}", run.platform);
        assert!(
            (chained_s - async_s).abs() / async_s < 0.02,
            "{}: chained {chained_s} vs async {async_s}",
            run.platform
        );
    }
}

#[test]
fn trace_decompositions_are_exhaustive() {
    // Every query's CPU + IO + remote + idle must cover its wall clock.
    for run in small_fleet() {
        for exec in &run.executions {
            let d = exec.decomposition();
            let covered = d.cpu + d.io + d.remote + d.idle;
            let drift = covered.as_nanos().abs_diff(d.end_to_end.as_nanos());
            assert!(
                drift <= 2,
                "{} {}: drift {drift}ns",
                run.platform,
                exec.label
            );
        }
    }
}
