//! System balance: derive the paper's Table 1 storage-to-storage ratios
//! from zipfian hit-rate provisioning, and exercise the tiered store / DFS
//! substrate that sits under the platforms.
//!
//! Run with `cargo run --example storage_balance`.

use hsdp::core::category::Platform;
use hsdp::core::paper;
use hsdp::storage::cache::PolicyKind;
use hsdp::storage::dfs::{Dfs, DfsConfig, FileId};
use hsdp::storage::provision::{paper_spec, provision, PlatformClass};
use hsdp::storage::tier::TierKind;

fn main() {
    println!("system balance (Table 1)");
    println!("========================\n");

    println!("paper-published RAM : SSD : HDD ratios:");
    for platform in Platform::ALL {
        let r = paper::storage_ratio(platform);
        println!(
            "  {platform:<9} 1 : {:>4.0} : {:>4.0}   (HDD/SSD = {:.0}x)",
            r.ssd,
            r.hdd,
            r.hdd_per_ssd()
        );
    }

    println!("\nratios derived from zipf(0.9) hit-rate provisioning:");
    for (class, platform) in [
        (PlatformClass::Spanner, Platform::Spanner),
        (PlatformClass::BigTable, Platform::BigTable),
        (PlatformClass::BigQuery, Platform::BigQuery),
    ] {
        let spec = paper_spec(class);
        let p = provision(&spec);
        let (_, ssd, hdd) = p.ratio();
        println!(
            "  {platform:<9} 1 : {ssd:>5.1} : {hdd:>5.1}   (RAM hit target {:.0}%, RAM+SSD {:.0}%)",
            spec.ram_hit_target * 100.0,
            spec.ram_ssd_hit_target * 100.0
        );
    }

    // Exercise the DFS: write a "table", read it hot and cold.
    println!("\ndistributed file system demo:");
    let mut dfs = Dfs::new(DfsConfig {
        servers: 8,
        replication: 3,
        chunk_size: 4 * 1024 * 1024,
        tier_bytes: (8 << 20, 128 << 20, 1 << 40),
        policy: PolicyKind::TwoQ,
        ..DfsConfig::default()
    });
    let table = FileId(42);
    let write = dfs.write_file(table, 64 * 1024 * 1024);
    println!("  wrote 64 MiB across 3 replicas in {write}");
    let cold = dfs.read(table, 0, 64 * 1024 * 1024);
    println!("  cold scan: {} over {} chunks", cold.latency, cold.chunks);
    let warm = dfs.read(table, 0, 64 * 1024 * 1024);
    println!("  warm scan: {} (cache hits)", warm.latency);

    for tier in [TierKind::Ram, TierKind::Ssd] {
        let mut hits = 0u64;
        let mut total = 0u64;
        for server in dfs.servers() {
            let stats = server.stats(tier);
            hits += stats.hits;
            total += stats.hits + stats.misses;
        }
        println!(
            "  fleet {tier} hit rate after the warm scan: {:.0}%",
            if total > 0 {
                hits as f64 / total as f64 * 100.0
            } else {
                0.0
            }
        );
    }
}
