//! Quickstart: evaluate the sea-of-accelerators model on the calibrated
//! paper populations.
//!
//! Run with `cargo run --example quickstart`.

use hsdp::core::accel::Speedup;
use hsdp::core::category::Platform;
use hsdp::core::error::ModelError;
use hsdp::core::paper;
use hsdp::core::plan::{AccelerationPlan, InvocationModel};

fn main() -> Result<(), ModelError> {
    println!("sea-of-accelerators quickstart");
    println!("==============================\n");

    for platform in Platform::ALL {
        let population = paper::query_population(platform);
        let categories = paper::accelerated_categories(platform);
        println!(
            "{platform}: accelerating {} components (top taxes + core compute)",
            categories.len()
        );

        for speedup in [8.0, 64.0] {
            let sync = AccelerationPlan::uniform(
                categories.clone(),
                Speedup::new(speedup)?,
                InvocationModel::Synchronous,
            )?;
            let chained = sync.with_invocation(InvocationModel::Chained);

            println!(
                "  {speedup:>4.0}x/accel | hw-only (deps kept): sync {:>5.2}x, chained {:>5.2}x | \
                 co-design (deps removed): {:>7.2}x aggregate, {:>9.1}x peak query",
                population.aggregate_speedup(&sync),
                population.aggregate_speedup(&chained),
                population.aggregate_codesign_speedup(&sync),
                population.peak_codesign_speedup(&sync),
            );
        }
        println!();
    }

    println!(
        "takeaway: with IO and remote work retained, hardware-only acceleration\n\
         saturates around 1.4x-2.2x (the paper's Figure 9 bound); removing the\n\
         distributed overheads through software-hardware co-design unlocks\n\
         order-of-magnitude per-query peaks."
    );
    Ok(())
}
