//! Fleet profiling: run the three simulated platforms on live synthetic
//! traffic and print their Dapper/GWP-style profiles (the paper's
//! Figures 2–6 pipeline, end to end).
//!
//! Run with `cargo run --release --example fleet_profiling`.

use hsdp::core::category::BroadCategory;
use hsdp::fleet::{profile_fleet, PlatformRun};
use hsdp::platforms::runner::FleetConfig;
use hsdp::profiling::report;

fn main() {
    let config = FleetConfig {
        db_queries: 400,
        analytics_queries: 60,
        fact_rows: 8_000,
        seed: 0xF1EE7,
        // Shards run concurrently (results are identical at any thread
        // count; see DESIGN.md "Parallel fleet execution & determinism").
        ..FleetConfig::default()
    };
    println!("running the simulated fleet: {config:?}\n");

    for run in profile_fleet(config) {
        print_platform(&run);
    }
}

fn print_platform(run: &PlatformRun) {
    println!("{}", "=".repeat(64));
    // Figure 2: end-to-end time decomposition by query group.
    print!("{}", report::render_figure2(run.platform, &run.figure2));
    println!();

    // Figure 3: broad cycle categories.
    print!("{}", report::render_figure3(run.platform, &run.profile));

    // Figure 4: core compute fine categories.
    let core_rows: Vec<(String, f64)> = run
        .profile
        .core_compute_rows(run.platform)
        .into_iter()
        .filter(|(_, share)| *share > 0.0)
        .map(|(op, share)| (op.to_string(), share))
        .collect();
    print!(
        "{}",
        report::render_category_rows("  core compute breakdown (Figure 4):", &core_rows)
    );

    // Figure 5: datacenter taxes.
    let dct_rows: Vec<(String, f64)> = run
        .profile
        .datacenter_tax_rows()
        .into_iter()
        .map(|(tax, share)| (tax.to_string(), share))
        .collect();
    print!(
        "{}",
        report::render_category_rows("  datacenter tax breakdown (Figure 5):", &dct_rows)
    );

    // Figure 6: system taxes.
    let st_rows: Vec<(String, f64)> = run
        .profile
        .system_tax_rows()
        .into_iter()
        .map(|(tax, share)| (tax.to_string(), share))
        .collect();
    print!(
        "{}",
        report::render_category_rows("  system tax breakdown (Figure 6):", &st_rows)
    );

    // Hottest leaf functions, GWP style.
    println!("  hottest leaf functions:");
    for (leaf, category, samples) in run.profile.top_leaves(5) {
        println!("    {leaf:<24} {category:<18} {samples} samples");
    }
    let taxes = run.profile.broad_share(BroadCategory::DatacenterTax)
        + run.profile.broad_share(BroadCategory::SystemTax);
    println!(
        "  => {:.0}% of {} cycles are datacenter + system taxes\n",
        taxes * 100.0,
        run.platform
    );
}
