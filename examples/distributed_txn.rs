//! Distributed transactions: two-phase commit across Spanner consensus
//! groups, and why multi-group writes are the remote-heaviest queries in
//! the fleet.
//!
//! Run with `cargo run --release --example distributed_txn`.

use hsdp::platforms::spanner::{Spanner, SpannerConfig};
use hsdp::platforms::twopc::{distributed_commit, TxnWrite};

fn main() {
    println!("two-phase commit across consensus groups");
    println!("========================================\n");

    // Three replication groups (each 5 replicas, quorum 3).
    let mut groups: Vec<Spanner> = (0..3)
        .map(|i| Spanner::new(SpannerConfig::default(), 1000 + i))
        .collect();

    // Baseline: a single-group commit.
    let single = groups[0].commit(b"user:1:balance".to_vec(), b"100".to_vec());
    let sd = single.decomposition();
    println!(
        "single-group commit: cpu {} | remote {} | io {}",
        sd.cpu, sd.remote, sd.io
    );

    // A transfer touching two groups: debit in group 0, credit in group 2.
    let mut refs: Vec<&mut Spanner> = groups.iter_mut().collect();
    let writes = vec![
        TxnWrite {
            group: 0,
            key: b"user:1:balance".to_vec(),
            value: b"60".to_vec(),
        },
        TxnWrite {
            group: 2,
            key: b"user:9:balance".to_vec(),
            value: b"40".to_vec(),
        },
    ];
    let txn = distributed_commit(&mut refs, &writes, 42);
    let td = txn.decomposition();
    println!(
        "two-group 2PC:       cpu {} | remote {} | io {}",
        td.cpu, td.remote, td.io
    );
    println!(
        "  remote-work share: {:.0}% (prepare + commit quorum rounds)",
        td.remote_share() * 100.0
    );

    // Both groups applied their writes atomically-in-effect.
    assert_eq!(groups[0].lookup(b"user:1:balance"), Some(b"60".to_vec()));
    assert_eq!(groups[2].lookup(b"user:9:balance"), Some(b"40".to_vec()));
    println!(
        "\nwrites visible in both groups; each group logged prepare + commit \
         records ({} and {} log entries)",
        groups[0].log_len(),
        groups[2].log_len()
    );
    println!(
        "\ntakeaway: a distributed write pays two serialized quorum waits — the\n\
         remote-work pattern that makes consensus the co-design target the\n\
         paper's Figure 10 remote-heavy group represents."
    );
}
