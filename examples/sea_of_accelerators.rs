//! Limit studies: sweep the sea-of-accelerators design space (the paper's
//! Figures 9, 13, 14, 15) over the calibrated populations.
//!
//! Run with `cargo run --example sea_of_accelerators`.

use hsdp::core::category::Platform;
use hsdp::core::paper;
use hsdp::core::study;

fn main() {
    println!("sea-of-accelerators limit studies");
    println!("=================================\n");

    // Figure 9: lockstep speedup sweep with/without non-CPU dependencies.
    println!("Figure 9 — synchronous on-chip upper bound:");
    for platform in Platform::ALL {
        let population = paper::query_population(platform);
        let categories = paper::accelerated_categories(platform);
        let points = study::speedup_sweep(&population, &categories, &[1.0, 8.0, 64.0]);
        println!("  {platform}:");
        for pt in points {
            println!(
                "    s={:>2.0}x  with deps {:>5.2}x | deps removed {:>7.2}x | peak {:>9.1}x",
                pt.accel_speedup, pt.with_deps, pt.without_deps, pt.peak_without_deps
            );
        }
    }

    // Figure 13: accelerator feature trade-offs as components accumulate.
    println!("\nFigure 13 — accelerator features (all components active, 8x each):");
    for platform in Platform::ALL {
        let population = paper::query_population(platform);
        let steps = study::feature_study(platform, &population);
        let last = steps.last().expect("at least one accelerator");
        print!("  {platform}: ");
        for (name, speedup) in &last.speedups {
            print!("{name} {speedup:.2}x | ");
        }
        println!();
    }

    // Figure 14: setup-time sensitivity.
    println!("\nFigure 14 — setup-time sweep (Sync + On-Chip):");
    for platform in Platform::ALL {
        let population = paper::query_population(platform);
        let points = study::setup_sweep(platform, &population, &study::default_setup_grid());
        print!("  {platform}: ");
        for pt in &points {
            let sync = pt
                .speedups
                .iter()
                .find(|(n, _)| *n == "Sync + On-Chip")
                .map(|(_, s)| *s)
                .unwrap_or(0.0);
            print!("{} -> {sync:.2}x | ", pt.setup);
        }
        println!();
    }

    // Figure 15: published accelerators.
    println!("\nFigure 15 — published prior accelerators:");
    for platform in Platform::ALL {
        let population = paper::query_population(platform);
        println!("  {platform}:");
        for pt in study::prior_accelerator_study(platform, &population) {
            println!(
                "    {:<16} sync {:>5.2}x | chained {:>5.2}x",
                pt.name, pt.sync_speedup, pt.chained_speedup
            );
        }
    }

    println!(
        "\ntakeaway: asynchrony and chaining recover what synchronous invocation\n\
         loses; off-chip placement only pays off for small payloads; and the\n\
         published single-function accelerators combine to ~1.5x-1.7x on the\n\
         databases — the case for a holistic accelerator complex."
    );
}
