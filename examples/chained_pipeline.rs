//! Chained-accelerator model validation (the paper's Section 6.4 /
//! Table 8): replay the published RTL numbers through the model, then run a
//! real protobuf-serialize → SHA3 software pipeline and compare measurement
//! to the model estimate.
//!
//! Run with `cargo run --release --example chained_pipeline`.

use hsdp::accelsim::modeled::{
    analytic_chained, simulate_asynchronous, simulate_chained, simulate_synchronous, StageSpec,
};
use hsdp::accelsim::validate::{paper_replay, software_validation};
use hsdp::simcore::time::SimDuration;

fn main() {
    println!("chained-accelerator model validation");
    println!("====================================\n");

    // Part 1: Table 8 replay.
    let replay = paper_replay();
    println!("paper replay (published RISC-V RTL inputs):");
    println!(
        "  serialization: t_sub {:.1}us, {:.0}x, setup {:.1}us",
        replay.inputs.proto_tsub_us, replay.inputs.proto_speedup, replay.inputs.proto_setup_us
    );
    println!(
        "  SHA3:          t_sub {:.1}us, {:.1}x, setup {:.1}us",
        replay.inputs.sha3_tsub_us, replay.inputs.sha3_speedup, replay.inputs.sha3_setup_us
    );
    println!("  non-accelerated CPU: {:.1}us", replay.inputs.nacc_cpu_us);
    println!(
        "  model estimate: {:.1}us (paper printed {:.1}us; measured {:.1}us)",
        replay.recomputed_modeled_us,
        replay.inputs.modeled_chained_us,
        replay.inputs.measured_chained_us
    );
    println!(
        "  model-vs-measured difference: {:.1}% (paper reports 6.1%)\n",
        replay.model_vs_measured * 100.0
    );

    // Part 2: event-level execution-model cross-check.
    println!("execution-model cross-check (event-level simulation, 1000 items):");
    let stages = [
        StageSpec {
            per_item: SimDuration::from_micros(17),
            setup: SimDuration::from_micros(1489),
        },
        StageSpec {
            per_item: SimDuration::from_micros(22),
            setup: SimDuration::from_micros(4),
        },
    ];
    println!("  synchronous  {:?}", simulate_synchronous(&stages, 1000));
    println!("  asynchronous {:?}", simulate_asynchronous(&stages, 1000));
    println!(
        "  chained      {:?} (closed form: {:?})\n",
        simulate_chained(&stages, 1000),
        analytic_chained(&stages, 1000)
    );

    // Part 3: real software pipeline over a fleet-representative corpus.
    let messages = 2_000;
    println!("software pipeline ({messages} HyperProtoBench-style messages):");
    let v = software_validation(messages, 0x7ab1e8);
    println!("  serialize t_sub: {:>10.1}us", v.serialize_us);
    println!("  sha3 t_sub:      {:>10.1}us", v.sha3_us);
    println!("  sequential wall: {:>10.1}us", v.sequential_us);
    println!(
        "  chained wall:    {:>10.1}us (measured)",
        v.chained_measured_us
    );
    println!(
        "  chained model:   {:>10.1}us (Eq. 10 estimate)",
        v.chained_modeled_us
    );
    println!(
        "  model-vs-measured difference: {:.1}%",
        v.model_vs_measured * 100.0
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("  (host parallelism: {cores} core(s))");
}
